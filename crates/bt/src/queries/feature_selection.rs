//! Feature selection by statistical hypothesis testing
//! (paper §IV-B.3, Fig 13).
//!
//! Three sub-queries composed into one plan:
//!
//! - **TotalCount** (partitioned by `AdId`): total clicks and examples per
//!   ad over the analysis horizon;
//! - **PerKWCount** (partitioned by `{AdId, Keyword}`): clicks and
//!   examples per `(ad, keyword)` pair, from the training rows;
//! - **CalcScore**: a TemporalJoin of the two count streams on `AdId`,
//!   followed by the z-score computed as a plain arithmetic expression
//!   (where the paper uses a UDO) and the support filter (≥ 5 clicks with
//!   the keyword).
//!
//! The output keeps the raw counts alongside `Z`, so different |z|
//! thresholds (the Fig 20/22 sweeps) can be applied without re-running the
//! job.

use super::{labels_payload, train_rows_payload, BtQuery};
use crate::params::BtParams;
use temporal::agg::AggExpr;
use temporal::expr::{col, lit, Expr};
use temporal::plan::{Operator, Query};
use timr::{Annotation, ExchangeKey};

/// `s(1-s)/n` with the smoothed proportion `s = (clicks + ½)/(examples+1)`
/// (Agresti–Coull-style; keeps the variance positive at zero clicks).
fn variance_term(clicks: Expr, examples: Expr) -> Expr {
    let s = clicks.add(lit(0.5)).div(examples.clone().add(lit(1.0)));
    s.clone().mul(lit(1.0).sub(s)).div(examples)
}

/// Build the feature-selection query. Inputs: `labels` and `train_rows`
/// (both Interval-encoded outputs of the GenTrainData jobs); output:
/// [`super::scores_payload`].
pub fn query(params: &BtParams) -> BtQuery {
    let q = Query::new();
    let labels = q.source("labels", labels_payload());
    let train = q.source("train_rows", train_rows_payload());

    // TotalCount: clicks and examples per ad over the whole horizon.
    let totals = labels
        .hop_window(params.horizon, params.horizon)
        .group_apply(&["AdId"], |g| {
            g.aggregate(vec![
                ("TotalClicks".to_string(), AggExpr::Sum(col("Label"))),
                ("TotalExamples".to_string(), AggExpr::Count),
            ])
        });

    // PerKWCount: clicks and examples per (ad, keyword).
    let per_kw = train
        .hop_window(params.horizon, params.horizon)
        .group_apply(&["AdId", "Keyword"], |g| {
            g.aggregate(vec![
                ("ClicksWith".to_string(), AggExpr::Sum(col("Label"))),
                ("ExamplesWith".to_string(), AggExpr::Count),
            ])
        });

    // CalcScore: join the two streams and evaluate the unpooled
    // two-proportion z-test. Variance terms use Agresti–Coull-style
    // smoothed proportions (clicks + ½)/(examples + 1) — see
    // `crate::ztest::z_score`, which this expression mirrors exactly (the
    // cross-check tests compare the two to 1e-9).
    let joined = per_kw.temporal_join(totals, &[("AdId", "AdId")], None);
    let clicks_without = col("TotalClicks").sub(col("ClicksWith"));
    let examples_without = col("TotalExamples").sub(col("ExamplesWith"));
    let p_with = col("ClicksWith").mul(lit(1.0)).div(col("ExamplesWith"));
    let p_without = clicks_without
        .clone()
        .mul(lit(1.0))
        .div(examples_without.clone());
    let var_with = variance_term(col("ClicksWith"), col("ExamplesWith"));
    let var_without = variance_term(clicks_without, examples_without);
    let z = p_with.sub(p_without).div(var_with.add(var_without).sqrt());

    let out = joined
        .filter(
            col("ClicksWith")
                .ge(lit(params.min_support))
                .or(col("ExamplesWith").ge(lit(params.min_example_support))),
        )
        .project(vec![
            ("AdId".to_string(), col("AdId")),
            ("Keyword".to_string(), col("Keyword")),
            ("ClicksWith".to_string(), col("ClicksWith")),
            ("ExamplesWith".to_string(), col("ExamplesWith")),
            ("TotalClicks".to_string(), col("TotalClicks")),
            ("TotalExamples".to_string(), col("TotalExamples")),
            ("Z".to_string(), z),
        ])
        // Degenerate rows (zero variance, empty without-population) make
        // the z expression Null; drop them with a tautological comparison
        // that is Null-rejecting.
        .filter(col("Z").ge(lit(f64::MIN)).or(col("Z").lt(lit(f64::MIN))));

    let plan = q.build(vec![out]).unwrap();

    // Everything is partitionable by AdId: exchange both source reads.
    let mut annotation = Annotation::none();
    for (id, node) in plan.nodes().iter().enumerate() {
        for (idx, &child) in node.inputs.iter().enumerate() {
            if matches!(plan.node(child).op, Operator::Source { .. }) {
                annotation = annotation.exchange(id, idx, ExchangeKey::keys(&["AdId"]));
            }
        }
    }

    BtQuery {
        name: "FeatureSelection",
        plan,
        annotation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ztest::{z_score, KeywordCounts};
    use relation::row;
    use temporal::exec::{bindings, execute_single};
    use temporal::{Event, EventStream};

    /// Build label and train-row streams describing a keyword strongly
    /// correlated with clicks on "adA" and an uncorrelated one.
    fn sample() -> (EventStream, EventStream) {
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        let mut t = 100i64;
        let mut add = |user: &str, ad: &str, label: i32, kws: &[&str], t: &mut i64| {
            *t += 10;
            labels.push(Event::point(*t, row![user, ad, label]));
            for kw in kws {
                rows.push(Event::point(*t, row![user, ad, label, *kw, 1i64]));
            }
        };
        // 10 clicks with "hot" in profile, 2 without.
        for i in 0..10 {
            add(&format!("c{i}"), "adA", 1, &["hot"], &mut t);
        }
        for i in 0..2 {
            add(&format!("d{i}"), "adA", 1, &["meh"], &mut t);
        }
        // 40 non-clicks, few with "hot", many with "meh"/none.
        for i in 0..3 {
            add(&format!("n{i}"), "adA", 0, &["hot"], &mut t);
        }
        for i in 0..20 {
            add(&format!("m{i}"), "adA", 0, &["meh"], &mut t);
        }
        for i in 0..17 {
            add(&format!("e{i}"), "adA", 0, &[], &mut t);
        }
        (
            EventStream::new(labels_payload(), labels),
            EventStream::new(train_rows_payload(), rows),
        )
    }

    #[test]
    fn z_scores_match_direct_computation() {
        let (labels, rows) = sample();
        let btq = query(&BtParams::default());
        let out = execute_single(
            &btq.plan,
            &bindings(vec![("labels", labels), ("train_rows", rows)]),
        )
        .unwrap()
        .normalize();

        // Expected from the pure z-test implementation.
        let expect_hot = z_score(&KeywordCounts {
            clicks_with: 10,
            examples_with: 13,
            total_clicks: 12,
            total_examples: 52,
        })
        .unwrap();
        let expect_meh = z_score(&KeywordCounts {
            clicks_with: 2,
            examples_with: 22,
            total_clicks: 12,
            total_examples: 52,
        })
        .unwrap();

        let mut got = std::collections::BTreeMap::new();
        for e in out.events() {
            let kw = e.payload.get(1).as_str().unwrap().to_string();
            let z = e.payload.get(6).as_double().unwrap();
            got.insert(kw, z);
        }
        let hot = got.get("hot").copied().expect("hot passes support");
        assert!((hot - expect_hot).abs() < 1e-9, "hot {hot} vs {expect_hot}");
        assert!(hot > 1.96, "hot is significantly positive: {hot}");
        if let Some(&meh) = got.get("meh") {
            assert!((meh - expect_meh).abs() < 1e-9);
            assert!(meh < 0.0, "meh leans negative: {meh}");
        }
    }

    #[test]
    fn support_filter_removes_rare_keywords() {
        let (labels, rows) = sample();
        let params = BtParams {
            min_support: 5,
            ..Default::default()
        };
        let btq = query(&params);
        let out = execute_single(
            &btq.plan,
            &bindings(vec![("labels", labels), ("train_rows", rows)]),
        )
        .unwrap()
        .normalize();
        // "meh" has only 2 clicks-with: filtered.
        assert!(out
            .events()
            .iter()
            .all(|e| e.payload.get(1).as_str() != Some("meh")));
        assert!(out
            .events()
            .iter()
            .any(|e| e.payload.get(1).as_str() == Some("hot")));
    }

    #[test]
    fn annotation_forms_single_adid_fragment() {
        let btq = query(&BtParams::default());
        btq.annotation.validate(&btq.plan).unwrap();
        let frags = timr::fragment::fragment(&btq.plan, &btq.annotation).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(
            frags[0].key,
            timr::fragment::FragmentKey::Keys(vec!["AdId".into()])
        );
        // Two inputs: labels and train_rows.
        assert_eq!(frags[0].inputs.len(), 2);
    }
}
