//! The PR 1 interpreted operator implementations, preserved verbatim.
//!
//! These are the clone-based, per-row name-resolving forms the compiled
//! operators replaced: `Expr::eval(&Schema, &Row)` re-resolves column names
//! per row, join/group keys materialize a `Vec<Value>` per event, and every
//! surviving event is cloned. They are kept as the measurement baseline for
//! `cargo bench` and the `pr2` experiment, and as the reference
//! implementation the property tests compare the compiled path against
//! (byte-identical outputs required). Select them at plan level with
//! [`crate::exec::ExecMode::Interpreted`].

use crate::agg::AggExpr;
use crate::error::{Result, TemporalError};
use crate::event::Event;
use crate::expr::Expr;
use crate::plan::{LifetimeOp, LogicalPlan};
use crate::stream::EventStream;
use crate::time::{ceil_to_grid, merge_intervals, Duration, Lifetime};
use crate::udo::UdoRef;
use relation::{Field, Row, Schema, Value};
use rustc_hash::FxHashMap;

/// Interpreted Filter: per-row name resolution, clones survivors.
pub fn filter(input: &EventStream, predicate: &Expr) -> Result<EventStream> {
    let schema = input.schema().clone();
    let mut events = Vec::with_capacity(input.len());
    for e in input.events() {
        if predicate.eval_predicate(&schema, &e.payload)? {
            events.push(e.clone());
        }
    }
    Ok(EventStream::new(schema, events))
}

/// Interpreted Project: per-row name resolution.
pub fn project(input: &EventStream, exprs: &[(String, Expr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    let mut events = Vec::with_capacity(input.len());
    for e in input.events() {
        let mut values = Vec::with_capacity(exprs.len());
        for (_, expr) in exprs {
            values.push(expr.eval(in_schema, &e.payload)?);
        }
        events.push(Event::new(e.lifetime, Row::new(values)));
    }
    Ok(EventStream::new(out_schema, events))
}

/// Interpreted AlterLifetime: rebuilds the stream, cloning every payload.
pub fn alter_lifetime(input: &EventStream, op: &LifetimeOp) -> Result<EventStream> {
    let events = input
        .events()
        .iter()
        .filter_map(|e| {
            crate::operators::alter_lifetime::transform(e.lifetime, op)
                .map(|lt| e.with_lifetime(lt))
        })
        .collect();
    Ok(EventStream::new(input.schema().clone(), events))
}

/// Interpreted snapshot Aggregate: per-row name resolution of arguments.
pub fn aggregate(input: &EventStream, aggs: &[(String, AggExpr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = Schema::new(
        aggs.iter()
            .map(|(name, a)| Ok(Field::new(name.clone(), a.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    if input.is_empty() {
        return Ok(EventStream::empty(out_schema));
    }
    let mut arg_values: Vec<Value> = Vec::with_capacity(input.len() * aggs.len());
    for e in input.events() {
        for (_, a) in aggs {
            arg_values.push(a.eval_arg(in_schema, &e.payload)?);
        }
    }
    crate::operators::aggregate::sweep(input, aggs, &arg_values, out_schema)
}

/// Interpreted GroupApply: `Vec<Value>` key per event, clones group events.
pub fn group_apply(
    input: &EventStream,
    keys: &[String],
    subplan: &LogicalPlan,
    run_subplan: &mut dyn FnMut(&LogicalPlan, EventStream) -> Result<EventStream>,
) -> Result<EventStream> {
    let in_schema = input.schema();
    let key_indices: Vec<usize> = keys
        .iter()
        .map(|k| in_schema.index_of(k).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;

    let mut groups: FxHashMap<Vec<Value>, Vec<Event>> = FxHashMap::default();
    for e in input.events() {
        let key: Vec<Value> = key_indices
            .iter()
            .map(|&i| e.payload.get(i).clone())
            .collect();
        groups.entry(key).or_default().push(e.clone());
    }

    let mut ordered: Vec<(Vec<Value>, Vec<Event>)> = groups.into_iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));

    let sub_out_schema = subplan.schema_of(subplan.roots()[0]).clone();
    let mut fields = Vec::with_capacity(keys.len() + sub_out_schema.len());
    for k in keys {
        fields.push(in_schema.field(k)?.clone());
    }
    fields.extend(sub_out_schema.fields().iter().cloned());
    let out_schema = Schema::new(fields);

    let mut out_events = Vec::new();
    for (key, events) in ordered {
        let group_stream = EventStream::new(in_schema.clone(), events);
        let result = run_subplan(subplan, group_stream)?;
        for e in result.into_events() {
            let mut values = Vec::with_capacity(key.len() + e.payload.len());
            values.extend(key.iter().cloned());
            values.extend(e.payload.into_values());
            out_events.push(Event::new(e.lifetime, Row::new(values)));
        }
    }
    Ok(EventStream::new(out_schema, out_events))
}

/// Interpreted Union: clones every input stream into the output.
pub fn union(inputs: &[&EventStream]) -> Result<EventStream> {
    let first = inputs
        .first()
        .ok_or_else(|| TemporalError::Plan("union of zero streams".into()))?;
    let mut out = EventStream::empty(first.schema().clone());
    for s in inputs {
        out.merge((*s).clone())?;
    }
    Ok(out)
}

/// Interpreted TemporalJoin: `Vec<Value>` keys per event on both sides,
/// per-row name resolution of the residual.
pub fn temporal_join(
    left: &EventStream,
    right: &EventStream,
    keys: &[(String, String)],
    residual: Option<&Expr>,
) -> Result<EventStream> {
    let lschema = left.schema();
    let rschema = right.schema();
    let out_schema = lschema.join(rschema);

    let lkeys: Vec<usize> = keys
        .iter()
        .map(|(l, _)| lschema.index_of(l).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<usize> = keys
        .iter()
        .map(|(_, r)| rschema.index_of(r).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;

    let mut right_index: FxHashMap<Vec<Value>, Vec<&Event>> = FxHashMap::default();
    for e in right.events() {
        let key: Vec<Value> = rkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        right_index.entry(key).or_default().push(e);
    }
    for bucket in right_index.values_mut() {
        bucket.sort_by_key(|e| (e.lifetime.start, e.lifetime.end));
    }

    let mut out = Vec::new();
    for le in left.events() {
        let key: Vec<Value> = lkeys.iter().map(|&i| le.payload.get(i).clone()).collect();
        let Some(bucket) = right_index.get(&key) else {
            continue;
        };
        for re in bucket {
            if re.lifetime.start >= le.lifetime.end {
                break;
            }
            let Some(lifetime) = le.lifetime.intersect(&re.lifetime) else {
                continue;
            };
            let payload = le.payload.concat(&re.payload);
            if let Some(pred) = residual {
                if !pred.eval_predicate(&out_schema, &payload)? {
                    continue;
                }
            }
            out.push(Event::new(lifetime, payload));
        }
    }
    Ok(EventStream::new(out_schema, out))
}

/// Interpreted AntiSemiJoin: `Vec<Value>` keys per event, clones survivors.
pub fn anti_semi_join(
    left: &EventStream,
    right: &EventStream,
    keys: &[(String, String)],
) -> Result<EventStream> {
    let lschema = left.schema();
    let rschema = right.schema();
    let lkeys: Vec<usize> = keys
        .iter()
        .map(|(l, _)| lschema.index_of(l).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<usize> = keys
        .iter()
        .map(|(_, r)| rschema.index_of(r).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;

    let mut covers: FxHashMap<Vec<Value>, Vec<Lifetime>> = FxHashMap::default();
    for e in right.events() {
        let key: Vec<Value> = rkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        covers.entry(key).or_default().push(e.lifetime);
    }
    for intervals in covers.values_mut() {
        let merged = merge_intervals(std::mem::take(intervals));
        *intervals = merged;
    }

    let mut out = Vec::with_capacity(left.len());
    for e in left.events() {
        let key: Vec<Value> = lkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        match covers.get(&key) {
            None => out.push(e.clone()),
            Some(holes) => {
                for fragment in e.lifetime.subtract_all(holes) {
                    out.push(e.with_lifetime(fragment));
                }
            }
        }
    }
    Ok(EventStream::new(lschema.clone(), out))
}

/// Interpreted HopUdo: copies and sorts the events.
pub fn hop_udo(
    input: &EventStream,
    hop: Duration,
    width: Duration,
    udo: &UdoRef,
) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = udo.output_schema(in_schema)?;
    if input.is_empty() {
        return Ok(EventStream::empty(out_schema));
    }
    let mut events: Vec<Event> = input.events().to_vec();
    events.sort_by_key(|e| e.lifetime.start);
    let min_t = events.first().map(|e| e.start()).unwrap();
    let max_t = events.last().map(|e| e.start()).unwrap();

    let mut out = Vec::new();
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut t = ceil_to_grid(min_t, hop);
    while t < max_t + width {
        while lo < events.len() && events[lo].start() <= t - width {
            lo += 1;
        }
        while hi < events.len() && events[hi].start() <= t {
            hi += 1;
        }
        if lo < hi {
            for row in udo.apply(t, in_schema, &events[lo..hi])? {
                out.push(Event::new(Lifetime::new(t, t + hop), row));
            }
        }
        t += hop;
    }
    Ok(EventStream::new(out_schema, out))
}
