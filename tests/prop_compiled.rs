//! Property tests for the compiled hot path (PR 2): the compiled
//! expression evaluator and the in-place operators must be *observably
//! identical* to their interpreted PR 1 baselines — values and error
//! cases — because repeatability of restarted reducers (paper §III-C.1)
//! requires the two executor modes to produce byte-identical streams.

use proptest::prelude::*;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{Row, Schema, Value};
use timr_suite::temporal::operators::{alter_lifetime, filter, interpreted, project};
use timr_suite::temporal::plan::LifetimeOp;
use timr_suite::temporal::{col, lit, CompiledExpr, Event, EventStream, Expr, Lifetime};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("I", ColumnType::Int),
        Field::new("L", ColumnType::Long),
        Field::new("D", ColumnType::Double),
        Field::new("S", ColumnType::Str),
        Field::new("B", ColumnType::Bool),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        -1000i32..1000,
        -10_000i64..10_000,
        -1e6f64..1e6,
        0u8..3,
        any::<bool>(),
        0u8..32,
    )
        .prop_map(|(i, l, d, s, b, nulls)| {
            let mut vals = vec![
                Value::Int(i),
                Value::Long(l),
                Value::Double(d),
                Value::from(format!("u{s}")),
                Value::Bool(b),
            ];
            for (k, v) in vals.iter_mut().enumerate() {
                if nulls & (1 << k) != 0 {
                    *v = Value::Null;
                }
            }
            Row::new(vals)
        })
}

fn apply_op(a: Expr, b: Expr, op: usize) -> Expr {
    match op {
        0 => a.add(b),
        1 => a.sub(b),
        2 => a.mul(b),
        3 => a.div(b),
        4 => a.eq(b),
        5 => a.ne(b),
        6 => a.lt(b),
        7 => a.le(b),
        8 => a.gt(b),
        9 => a.ge(b),
        10 => a.and(b),
        _ => a.or(b),
    }
}

/// Random expression trees over the test schema — including references to
/// a column that does not exist (`Missing`), type errors (arithmetic on
/// strings/booleans), division by zero, and sqrt of negatives, so the
/// error paths get exercised as much as the value paths.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![
            Just("I"),
            Just("L"),
            Just("D"),
            Just("S"),
            Just("B"),
            Just("Missing"),
        ]
        .prop_map(col),
        (-100i64..100).prop_map(lit),
        (-50.0f64..50.0).prop_map(lit),
        Just(lit(0i64)), // division-by-zero fodder
        Just(lit("u1")),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..12).prop_map(|(a, b, op)| apply_op(a, b, op)),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(Expr::sqrt),
            inner.prop_map(Expr::abs),
        ]
    })
}

fn arb_events(max_len: usize) -> impl Strategy<Value = Vec<(i64, i64, Row)>> {
    prop::collection::vec((0i64..200, 1i64..50, arb_row()), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(s, w, r)| (s, s + w, r)).collect())
}

fn stream_of(events: &[(i64, i64, Row)]) -> EventStream {
    EventStream::new(
        schema(),
        events
            .iter()
            .map(|(s, e, r)| Event::new(Lifetime::new(*s, *e), r.clone()))
            .collect(),
    )
}

fn arb_lifetime_op() -> impl Strategy<Value = LifetimeOp> {
    prop_oneof![
        (1i64..50).prop_map(LifetimeOp::Window),
        (1i64..20, 1i64..40).prop_map(|(hop, width)| LifetimeOp::Hop { hop, width }),
        (-20i64..20).prop_map(LifetimeOp::Shift),
        (0i64..20).prop_map(LifetimeOp::ExtendBack),
        Just(LifetimeOp::ToPoint),
    ]
}

/// A menu of projection expressions mixing movable passthroughs (bare
/// columns), repeated references (not movable), computations, and errors.
fn proj_menu(idx: usize) -> (String, Expr) {
    let exprs: Vec<(&str, Expr)> = vec![
        ("A", col("S")),
        ("B", col("L")),
        ("C", col("L").mul(lit(3i64)).add(col("I"))),
        ("D2", col("D").mul(col("D"))),
        ("E", col("S")),
        ("F", col("B").and(col("L").gt(lit(0i64)))),
        ("G", col("Missing").add(lit(1i64))),
        ("H", col("L").div(col("I"))),
    ];
    let (name, e) = &exprs[idx % exprs.len()];
    (format!("{name}{idx}"), e.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `CompiledExpr::eval` is observably identical to `Expr::eval`:
    /// equal values when both succeed, and errors at exactly the same
    /// inputs (short-circuiting included).
    #[test]
    fn compiled_expr_matches_interpreter(e in arb_expr(), r in arb_row()) {
        let s = schema();
        let interp = e.eval(&s, &r);
        let comp = CompiledExpr::compile(&e, &s).eval(&r);
        match (interp, comp) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "expr: {}", e),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "diverged on {}: {:?} vs {:?}", e, a, b),
        }
    }

    /// Predicate semantics (Null → false, non-boolean → error) agree too.
    #[test]
    fn compiled_predicate_matches_interpreter(e in arb_expr(), r in arb_row()) {
        let s = schema();
        let interp = e.eval_predicate(&s, &r);
        let comp = CompiledExpr::compile(&e, &s).eval_predicate(&r);
        match (interp, comp) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "expr: {}", e),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "diverged on {}: {:?} vs {:?}", e, a, b),
        }
    }

    /// The in-place filter equals the interpreted baseline on both the
    /// uniquely-owned and the shared-storage path, and never mutates a
    /// stream another consumer still holds.
    #[test]
    fn filter_matches_interpreted(events in arb_events(40), e in arb_expr()) {
        let input = stream_of(&events);
        let baseline = interpreted::filter(&input, &e);
        // Shared path: a clone of `input` is alive during the call.
        let shared = filter(input.clone(), &e);
        // Owned path: the operator holds the only handle.
        let owned = filter(stream_of(&events), &e);
        prop_assert_eq!(input, stream_of(&events), "shared input mutated");
        match (baseline, shared, owned) {
            (Ok(b), Ok(s), Ok(o)) => {
                prop_assert_eq!(&b, &s);
                prop_assert_eq!(&b, &o);
            }
            (Err(_), Err(_), Err(_)) => {}
            (b, s, o) => prop_assert!(
                false, "diverged: base {:?} shared {:?} owned {:?}", b, s, o
            ),
        }
    }

    /// In-place lifetime alteration equals the interpreted baseline on
    /// both storage paths.
    #[test]
    fn alter_lifetime_matches_interpreted(events in arb_events(40), op in arb_lifetime_op()) {
        let input = stream_of(&events);
        let baseline = interpreted::alter_lifetime(&input, &op).unwrap();
        let shared = alter_lifetime(input.clone(), &op).unwrap();
        let owned = alter_lifetime(stream_of(&events), &op).unwrap();
        prop_assert_eq!(input, stream_of(&events), "shared input mutated");
        prop_assert_eq!(&baseline, &shared);
        prop_assert_eq!(&baseline, &owned);
    }

    /// Projection — including the move-out of passthrough columns on the
    /// owned path — equals the interpreted baseline.
    #[test]
    fn project_matches_interpreted(
        events in arb_events(40),
        picks in prop::collection::vec(0usize..8, 1..6),
    ) {
        let exprs: Vec<(String, Expr)> =
            picks.iter().enumerate().map(|(j, &i)| proj_menu(i * 8 + j)).collect();
        let input = stream_of(&events);
        let baseline = interpreted::project(&input, &exprs);
        let shared = project(input.clone(), &exprs);
        let owned = project(stream_of(&events), &exprs);
        prop_assert_eq!(input, stream_of(&events), "shared input mutated");
        match (baseline, shared, owned) {
            (Ok(b), Ok(s), Ok(o)) => {
                prop_assert_eq!(&b, &s);
                prop_assert_eq!(&b, &o);
            }
            (Err(_), Err(_), Err(_)) => {}
            (b, s, o) => prop_assert!(
                false, "diverged: base {:?} shared {:?} owned {:?}", b, s, o
            ),
        }
    }
}
