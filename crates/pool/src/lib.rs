//! Shared chunked worker pool.
//!
//! Both parallel runtimes in this workspace — the map-reduce cluster's
//! map/shuffle and reduce phases, and the DSMS's per-group GroupApply
//! fan-out — have the same shape: a fixed list of independent tasks, a
//! small set of worker threads pulling task indices from an atomic
//! counter, and a **deterministic merge** of the results in task order so
//! output is byte-identical regardless of thread count or scheduling (the
//! repeatability property the paper's restart handling is built on,
//! §III-C.1). [`WorkerPool`] extracts that shape so the runtimes share one
//! implementation instead of hand-rolled `std::thread::scope` loops.
//!
//! The pool is configuration, not threads: workers are scoped to each
//! [`WorkerPool::run`] call (no idle threads between calls, results may
//! borrow from the caller's stack), and a pool handle can be shared
//! freely across layers — the cluster threads one `Arc<WorkerPool>` from
//! its config through every reducer into the embedded DSMS executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width worker pool executing indexed task lists.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// One worker per available core.
    fn default() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

impl WorkerPool {
    /// Pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: tasks run inline on the caller's thread.
    pub fn sequential() -> Self {
        WorkerPool::new(1)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(i)` for every `i in 0..tasks` and return the results in
    /// task order.
    ///
    /// Workers pull indices from a shared atomic counter, so any worker
    /// may execute any task — but the result vector is indexed by task,
    /// making the collected output (and therefore any in-order merge the
    /// caller performs) independent of thread count and scheduling. With
    /// one worker, or at most one task, everything runs inline on the
    /// calling thread with no spawns and no locks.
    ///
    /// A panicking task propagates the panic to the caller when the
    /// worker scope joins.
    pub fn run<T, F>(&self, tasks: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            return (0..tasks).map(task).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks {
                        break;
                    }
                    let out = task(t);
                    *slots[t].lock().expect("worker pool slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker pool slot poisoned")
                    .expect("worker pool left a task unexecuted")
            })
            .collect()
    }

    /// Run `task(i, item)` for every item, **moving** each item into its
    /// task, and return the results in item order.
    ///
    /// This is [`WorkerPool::run`] for task lists that own their inputs
    /// (e.g. GroupApply moving each group's events into its sub-plan run).
    pub fn map<I, T, F>(&self, items: Vec<I>, task: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }
        let inputs: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        self.run(inputs.len(), |i| {
            let item = inputs[i]
                .lock()
                .expect("worker pool slot poisoned")
                .take()
                .expect("worker pool task input taken twice");
            task(i, item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_moves_items_and_preserves_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        for threads in [1, 4] {
            let out = WorkerPool::new(threads).map(items.clone(), |i, s| format!("{i}:{s}"));
            let expected: Vec<String> = (0..50).map(|i| format!("{i}:item-{i}")).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        let out: Vec<usize> = WorkerPool::new(4).run(0, |i| i);
        assert!(out.is_empty());
        let out: Vec<u8> = WorkerPool::new(4).map(Vec::<u8>::new(), |_, b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn errors_are_ordinary_results() {
        // Fallible tasks return Result values; the caller propagates the
        // first error in task order, keeping failure deterministic.
        let pool = WorkerPool::new(4);
        let out: Vec<Result<usize, String>> = pool.run(10, |i| {
            if i % 3 == 0 {
                Err(format!("task {i}"))
            } else {
                Ok(i)
            }
        });
        let first_err = out.into_iter().find_map(Result::err);
        assert_eq!(first_err.as_deref(), Some("task 0"));
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data: Vec<i64> = (0..1000).collect();
        let sums = WorkerPool::new(4).run(10, |i| data[i * 100..(i + 1) * 100].iter().sum::<i64>());
        assert_eq!(sums.iter().sum::<i64>(), data.iter().sum::<i64>());
    }
}
