//! Recursive-descent parser for the StreamSQL dialect.

use super::ast::{Duration, Query, Select, SelectItem, SourceRef, WindowClause};
use super::lexer::{Token, TokenKind};
use crate::agg::AggExpr;
use crate::error::{Result, TemporalError};
use crate::expr::{col, lit, Expr, Func};
use crate::time::{DAY, HOUR, MIN, SEC};
use relation::schema::{ColumnType, Field};
use relation::Schema;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

fn perr(tok: &Token, msg: impl std::fmt::Display) -> TemporalError {
    TemporalError::Plan(format!(
        "StreamSQL parse error at byte {}: {msg}",
        tok.offset
    ))
}

/// Parse a token stream into a query AST.
pub fn parse(tokens: &[Token]) -> Result<Query> {
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    if !matches!(p.peek().kind, TokenKind::Eof) {
        return Err(perr(p.peek(), "trailing input after query"));
    }
    Ok(query)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &'a Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &'a Token {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(perr(self.peek(), format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek().is_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(perr(self.peek(), format!("expected `{sym}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(perr(self.peek(), "expected an identifier")),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut selects = vec![self.select()?];
        while self.peek().is_kw("UNION") {
            self.bump();
            self.expect_kw("ALL")?;
            selects.push(self.select()?);
        }
        Ok(Query { selects })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let items = self.select_items()?;
        self.expect_kw("FROM")?;
        let source = self.source()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.ident()?);
            while self.eat_sym(",") {
                group_by.push(self.ident()?);
            }
        }
        let window = if self.eat_kw("WINDOW") {
            let width = self.duration()?;
            if self.eat_kw("EVERY") {
                Some(WindowClause::Hopping {
                    width,
                    hop: self.duration()?,
                })
            } else {
                Some(WindowClause::Sliding(width))
            }
        } else {
            None
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            items,
            source,
            where_clause,
            group_by,
            window,
            having,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        if self.eat_sym("*") {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn agg_kind(name: &str) -> Option<fn(Expr) -> AggExpr> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggExpr::Sum),
            "MIN" => Some(AggExpr::Min),
            "MAX" => Some(AggExpr::Max),
            "AVG" => Some(AggExpr::Avg),
            "STDDEV" => Some(AggExpr::StdDev),
            "COUNT_DISTINCT" => Some(AggExpr::CountDistinct),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // COUNT(*) / SUM(e) / MIN / MAX / AVG get special handling; other
        // identifiers fall through to expression parsing.
        if let TokenKind::Ident(name) = &self.peek().kind {
            let upper = name.to_ascii_uppercase();
            let next_is_paren = self.tokens.get(self.pos + 1).is_some_and(|t| t.is_sym("("));
            if next_is_paren && upper == "COUNT" {
                self.bump();
                self.expect_sym("(")?;
                self.expect_sym("*")?;
                self.expect_sym(")")?;
                let out = self.alias_or("Count")?;
                return Ok(SelectItem::Agg {
                    name: out,
                    agg: AggExpr::Count,
                });
            }
            if next_is_paren {
                if let Some(make) = Self::agg_kind(&upper) {
                    self.bump();
                    self.expect_sym("(")?;
                    let inner = self.expr()?;
                    self.expect_sym(")")?;
                    let out = self.alias_or(&upper)?;
                    return Ok(SelectItem::Agg {
                        name: out,
                        agg: make(inner),
                    });
                }
            }
        }
        let expr = self.expr()?;
        let default = match &expr {
            Expr::Column(c) => c.clone(),
            _ => "Expr".to_string(),
        };
        let name = self.alias_or(&default)?;
        Ok(SelectItem::Expr { name, expr })
    }

    fn alias_or(&mut self, default: &str) -> Result<String> {
        if self.eat_kw("AS") {
            self.ident()
        } else {
            Ok(default.to_string())
        }
    }

    fn source(&mut self) -> Result<SourceRef> {
        if self.eat_sym("(") {
            let query = self.query()?;
            self.expect_sym(")")?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(SourceRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut fields = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty_tok = self.peek();
            let ty_name = self.ident()?;
            let ty = match ty_name.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" => ColumnType::Int,
                "LONG" | "BIGINT" => ColumnType::Long,
                "DOUBLE" | "FLOAT" => ColumnType::Double,
                "STRING" | "VARCHAR" | "TEXT" => ColumnType::Str,
                "BOOL" | "BOOLEAN" => ColumnType::Bool,
                other => return Err(perr(ty_tok, format!("unknown column type `{other}`"))),
            };
            fields.push(Field::new(col_name, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(SourceRef::Stream {
            name,
            schema: Schema::new(fields),
        })
    }

    fn duration(&mut self) -> Result<Duration> {
        let tok = self.peek();
        let n = match tok.kind {
            TokenKind::Int(n) => {
                self.bump();
                n
            }
            _ => return Err(perr(tok, "expected a duration count")),
        };
        let unit_tok = self.peek();
        let unit = self.ident()?;
        let per = match unit.to_ascii_uppercase().trim_end_matches('S') {
            "TICK" => 1,
            "SECOND" | "SEC" => SEC,
            "MINUTE" | "MIN" => MIN,
            "HOUR" | "HR" => HOUR,
            "DAY" => DAY,
            other => {
                return Err(perr(
                    unit_tok,
                    format!("unknown duration unit `{other}` (TICKS/SECONDS/MINUTES/HOURS/DAYS)"),
                ))
            }
        };
        Ok(Duration { ticks: n * per })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            left = left.or(self.and_expr()?);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            left = left.and(self.not_expr()?);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        for (sym, f) in [
            ("=", Expr::eq as fn(Expr, Expr) -> Expr),
            ("<>", Expr::ne),
            ("<=", Expr::le),
            (">=", Expr::ge),
            ("<", Expr::lt),
            (">", Expr::gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.add_expr()?;
                return Ok(f(left, right));
            }
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                left = left.add(self.mul_expr()?);
            } else if self.eat_sym("-") {
                left = left.sub(self.mul_expr()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            if self.eat_sym("*") {
                left = left.mul(self.primary()?);
            } else if self.eat_sym("/") {
                left = left.div(self.primary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let tok = self.peek();
        match &tok.kind {
            TokenKind::Int(n) => {
                let n = *n;
                self.bump();
                Ok(lit(n))
            }
            TokenKind::Float(f) => {
                let f = *f;
                self.bump();
                Ok(lit(f))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(lit(s.as_str()))
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Symbol("-") => {
                self.bump();
                Ok(lit(0i64).sub(self.primary()?))
            }
            TokenKind::Ident(name) => {
                let func = match name.to_ascii_uppercase().as_str() {
                    "SQRT" => Some(Func::Sqrt),
                    "ABS" => Some(Func::Abs),
                    "LN" => Some(Func::Ln),
                    "EXP" => Some(Func::Exp),
                    "POW" => Some(Func::Pow),
                    _ => None,
                };
                let name = name.clone();
                self.bump();
                if let (Some(func), true) = (func, self.peek().is_sym("(")) {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.eat_sym(",") {
                        args.push(self.expr()?);
                    }
                    self.expect_sym(")")?;
                    let arity = args.len();
                    if arity
                        != match func {
                            Func::Pow | Func::Min2 | Func::Max2 => 2,
                            _ => 1,
                        }
                    {
                        return Err(perr(tok, format!("wrong arity {arity} for function")));
                    }
                    return Ok(Expr::Call { func, args });
                }
                Ok(col(name))
            }
            other => Err(perr(tok, format!("expected an expression, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse_ok(sql: &str) -> Query {
        parse(&tokenize(sql).unwrap()).unwrap()
    }

    #[test]
    fn parses_full_select() {
        let q = parse_ok(
            "SELECT A, COUNT(*) AS N, SUM(B) AS S FROM s(A STRING, B LONG) \
             WHERE B > 3 AND NOT A = 'x' GROUP BY A WINDOW 5 MINUTES HAVING N > 1",
        );
        let sel = &q.selects[0];
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.group_by, vec!["A"]);
        assert!(matches!(
            sel.window,
            Some(WindowClause::Sliding(Duration { ticks: 300 }))
        ));
        assert!(sel.having.is_some());
    }

    #[test]
    fn parses_hopping_window() {
        let q = parse_ok("SELECT COUNT(*) AS N FROM s(A INT) WINDOW 6 HOURS EVERY 15 MINUTES");
        assert!(matches!(
            q.selects[0].window,
            Some(WindowClause::Hopping {
                width: Duration { ticks: 21_600 },
                hop: Duration { ticks: 900 }
            })
        ));
    }

    #[test]
    fn expression_precedence() {
        let q = parse_ok("SELECT A + B * 2 AS X FROM s(A INT, B INT)");
        match &q.selects[0].items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(A + (B * 2))");
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn union_all_and_subquery() {
        let q = parse_ok(
            "SELECT A FROM (SELECT A FROM s(A INT) UNION ALL SELECT A FROM t(A INT)) AS u",
        );
        match &q.selects[0].source {
            SourceRef::Subquery { query, alias } => {
                assert_eq!(query.selects.len(), 2);
                assert_eq!(alias.as_deref(), Some("u"));
            }
            other => panic!("unexpected source {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse(&tokenize("SELECT A").unwrap()).is_err());
        assert!(parse(&tokenize("SELECT A FROM s(A INT) garbage").unwrap()).is_err());
    }
}
