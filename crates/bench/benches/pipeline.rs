//! Fig 14 (right) as a Criterion benchmark: the end-to-end BT pipeline on
//! TiMR vs the hand-written custom reducers, over the same generated log.

use bench::Scale;
use bt::baselines::custom::run_custom;
use bt::pipeline::BtPipeline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};

static RUN: AtomicUsize = AtomicUsize::new(0);

fn bench_pipelines(c: &mut Criterion) {
    let mut workload_cfg = Scale::Small.gen_config(7);
    workload_cfg.users = 400; // keep iterations fast
    let log = adgen::generate(&workload_cfg);
    let rows = log.rows();

    let mut group = c.benchmark_group("fig14_pipeline");
    group.sample_size(10);

    group.bench_function("timr", |b| {
        b.iter(|| {
            let dfs = mapreduce::Dfs::new();
            dfs.put(
                "logs",
                mapreduce::Dataset::single(adgen::unified_schema(), rows.clone()),
            )
            .unwrap();
            let params = bt::BtParams {
                machines: 4,
                horizon: workload_cfg.duration * 2,
                ..Default::default()
            };
            let id = RUN.fetch_add(1, Ordering::Relaxed);
            BtPipeline::new(params)
                .run(&dfs, &mapreduce::Cluster::new(), "logs", &format!("b{id}"))
                .unwrap()
        })
    });

    group.bench_function("custom", |b| {
        b.iter(|| {
            let dfs = mapreduce::Dfs::new();
            dfs.put(
                "logs",
                mapreduce::Dataset::single(adgen::unified_schema(), rows.clone()),
            )
            .unwrap();
            let params = bt::BtParams {
                machines: 4,
                ..Default::default()
            };
            run_custom(&dfs, &mapreduce::Cluster::new(), "logs", "c", &params).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
