//! Sparse logistic regression (paper §IV-B.4).
//!
//! `y = 1 / (1 + e^-(w0 + wᵀx))`, trained by batch gradient descent with
//! L2 regularization over a *balanced* dataset: because CTR is typically
//! below 1%, the paper samples negatives to match positives, and then
//! calibrates raw predictions back to CTR estimates with a k-nearest
//! validation lookup ([`CtrCalibrator`]).

use crate::example::{Example, FeatureVector};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use rustc_hash::FxHashMap;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LrConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for negative sampling and shuffling.
    pub seed: u64,
    /// Negatives per positive in the balanced sample.
    pub negatives_per_positive: f64,
}

impl Default for LrConfig {
    fn default() -> Self {
        LrConfig {
            epochs: 40,
            learning_rate: 0.3,
            l2: 1e-3,
            seed: 17,
            negatives_per_positive: 1.0,
        }
    }
}

/// A trained model: intercept plus sparse weights.
#[derive(Debug, Clone, Default)]
pub struct LrModel {
    /// w0.
    pub bias: f64,
    /// Feature weights.
    pub weights: FxHashMap<String, f64>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl LrModel {
    /// Raw model output in (0, 1) for a feature vector.
    pub fn predict(&self, features: &FeatureVector) -> f64 {
        let mut x = self.bias;
        for (k, v) in features {
            if let Some(w) = self.weights.get(k) {
                x += w * v;
            }
        }
        sigmoid(x)
    }

    /// Number of non-zero weights.
    pub fn dimensionality(&self) -> usize {
        self.weights.len()
    }
}

/// Balance the dataset by sampling negatives (paper: "we create a balanced
/// dataset by sampling the negative examples").
pub fn balance<'a>(examples: &'a [Example], config: &LrConfig) -> Vec<&'a Example> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let positives: Vec<&Example> = examples.iter().filter(|e| e.label == 1).collect();
    let negatives: Vec<&Example> = examples.iter().filter(|e| e.label == 0).collect();
    let keep = ((positives.len() as f64 * config.negatives_per_positive).ceil() as usize)
        .min(negatives.len());
    let mut sampled: Vec<&Example> = negatives.choose_multiple(&mut rng, keep).copied().collect();
    sampled.extend(positives);
    sampled.shuffle(&mut rng);
    sampled
}

/// Train a model on (already feature-selected) examples.
pub fn train(examples: &[Example], config: &LrConfig) -> LrModel {
    let data = balance(examples, config);
    let mut model = LrModel::default();
    if data.is_empty() {
        return model;
    }
    let n = data.len() as f64;
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xABCD);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            let e = data[i];
            let p = model.predict(&e.features);
            let err = e.label as f64 - p;
            let step = config.learning_rate * err;
            model.bias += step - config.learning_rate * config.l2 * model.bias / n;
            for (k, v) in &e.features {
                let w = model.weights.entry(k.clone()).or_insert(0.0);
                *w += step * v - config.learning_rate * config.l2 * *w / n;
            }
        }
    }
    model
}

/// Calibrates balanced-model outputs back to CTR estimates: the predicted
/// value `y` is mapped to the positive fraction among the `k` validation
/// examples with the nearest predictions (paper §IV-B.4).
#[derive(Debug, Clone)]
pub struct CtrCalibrator {
    /// `(prediction, label)` sorted by prediction.
    scored: Vec<(f64, u8)>,
    k: usize,
}

impl CtrCalibrator {
    /// Build from a validation set.
    pub fn new(model: &LrModel, validation: &[Example], k: usize) -> Self {
        let mut scored: Vec<(f64, u8)> = validation
            .iter()
            .map(|e| (model.predict(&e.features), e.label))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        CtrCalibrator {
            scored,
            k: k.max(1),
        }
    }

    /// Estimated CTR for raw prediction `y`.
    pub fn ctr(&self, y: f64) -> f64 {
        if self.scored.is_empty() {
            return 0.0;
        }
        let idx = self
            .scored
            .partition_point(|(p, _)| *p < y)
            .min(self.scored.len() - 1);
        let half = self.k / 2;
        let lo = idx.saturating_sub(half);
        let hi = (lo + self.k).min(self.scored.len());
        let lo = hi.saturating_sub(self.k);
        let slice = &self.scored[lo..hi];
        slice.iter().filter(|(_, l)| *l == 1).count() as f64 / slice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn example(label: u8, feats: &[(&str, f64)]) -> Example {
        Example {
            time: 0,
            user: "u".into(),
            ad: "ad".into(),
            label,
            features: feats.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// A separable dataset: clicks iff "good" feature present.
    fn separable(n: usize) -> Vec<Example> {
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..n {
            if rng.gen::<f64>() < 0.2 {
                out.push(example(1, &[("good", 1.0), ("noise", rng.gen())]));
            } else {
                out.push(example(0, &[("bad", 1.0), ("noise", rng.gen())]));
            }
        }
        out
    }

    #[test]
    fn learns_separable_data() {
        let data = separable(500);
        let model = train(&data, &LrConfig::default());
        assert!(
            model.weights["good"] > 1.0,
            "good weight {:?}",
            model.weights["good"]
        );
        assert!(model.weights["bad"] < -1.0);
        let pos = model.predict(&example(1, &[("good", 1.0)]).features);
        let neg = model.predict(&example(0, &[("bad", 1.0)]).features);
        assert!(pos > 0.8, "positive prediction {pos}");
        assert!(neg < 0.2, "negative prediction {neg}");
    }

    #[test]
    fn balancing_downsamples_negatives() {
        let mut data = separable(0);
        for _ in 0..10 {
            data.push(example(1, &[("a", 1.0)]));
        }
        for _ in 0..990 {
            data.push(example(0, &[("b", 1.0)]));
        }
        let balanced = balance(&data, &LrConfig::default());
        let pos = balanced.iter().filter(|e| e.label == 1).count();
        let neg = balanced.iter().filter(|e| e.label == 0).count();
        assert_eq!(pos, 10);
        assert_eq!(neg, 10);
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable(200);
        let a = train(&data, &LrConfig::default());
        let b = train(&data, &LrConfig::default());
        assert_eq!(a.bias, b.bias);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn empty_training_set_gives_null_model() {
        let model = train(&[], &LrConfig::default());
        assert_eq!(model.bias, 0.0);
        assert_eq!(model.dimensionality(), 0);
    }

    #[test]
    fn gradient_direction_check() {
        // Single positive example with one feature: weight must move up.
        let data = vec![example(1, &[("f", 1.0)]), example(0, &[("g", 1.0)])];
        let model = train(
            &data,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert!(model.weights["f"] > 0.0);
        assert!(model.weights["g"] < 0.0);
    }

    /// Graded data: click probability grows with the feature value, so
    /// predictions spread over (0, 1) instead of clustering at the ends.
    fn graded(n: usize) -> Vec<Example> {
        let mut rng = SmallRng::seed_from_u64(5);
        (0..n)
            .map(|i| {
                let v = (i % 10) as f64;
                let label = u8::from(rng.gen::<f64>() < v / 10.0);
                example(label, &[("x", v)])
            })
            .collect()
    }

    #[test]
    fn calibrator_recovers_monotone_ctr() {
        let data = graded(2000);
        let model = train(&data, &LrConfig::default());
        let cal = CtrCalibrator::new(&model, &data, 100);
        let strong = model.predict(&example(1, &[("x", 9.0)]).features);
        let weak = model.predict(&example(0, &[("x", 0.0)]).features);
        assert!(strong > weak);
        let high = cal.ctr(strong);
        let low = cal.ctr(weak);
        assert!(
            high > low + 0.3,
            "calibrated CTR must track true CTR: high {high} low {low}"
        );
        assert!(high > 0.6, "v=9 clicks ~90% of the time: {high}");
        assert!(low < 0.3, "v=0 never clicks: {low}");
    }
}
