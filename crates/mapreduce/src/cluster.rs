//! Stage execution with deterministic fault injection, panic
//! containment, integrity verification, and retry.
//!
//! The [`Cluster`] owns everything shared across execution backends —
//! input capture, the deterministic shuffle merge/seal/spill, corruption
//! rebuild, and all-or-nothing publish — and delegates task execution to
//! a [`crate::backend::Backend`] (in-process threads by default, real
//! worker OS processes via [`BackendKind::Processes`]).
//!
//! Every task (map scan, shuffle fetch, reduce) runs inside a retry loop
//! ([`crate::backend::run_attempts`] on the thread backend, the process
//! scheduler's attempt accounting on the process backend) that:
//!
//! 1. asks the configured [`ChaosPlan`] whether this
//!    `(stage, phase, task, attempt)` coordinate is scheduled for a fault
//!    (panic / transient error / corruption / delay);
//! 2. wraps the attempt in `catch_unwind`, so a panic — injected or
//!    genuine — surfaces as a retryable [`TaskError::Panicked`] with its
//!    payload preserved, never a torn-down process;
//! 3. verifies integrity frames on the data the attempt reads, surfacing
//!    corruption as [`TaskError::Corrupt`] and re-running the producing
//!    work before the retry;
//! 4. backs off deterministically (jitter-free exponential, per
//!    [`RetryPolicy`]) between attempts, and escalates to
//!    [`MrError::TaskExhausted`] — naming stage, phase, partition, and
//!    attempt count — when attempts run out.
//!
//! Because reducers are pure and the shuffle merge is order-deterministic,
//! any schedule of contained faults that doesn't exhaust retries yields
//! output byte-identical to a clean run (paper §III-C.1); the property
//! tests in `tests/prop_chaos.rs` enforce exactly that. Stage outputs are
//! only published to the DFS after every partition has succeeded, so
//! partial results of failed attempts are never visible.

use crate::backend::{
    Backend, BackendKind, FaultCounters, ReduceOut, SpeculationPolicy, StageEnv, StageExec,
    ThreadBackend,
};
use crate::chaos::{self, ChaosPlan, ExtentFrame, RetryPolicy};
use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result, TaskError};
use crate::job::{CompiledPartitioner, MapperContext, ReduceInput, ReducerContext, Stage};
use crate::stats::{JobStats, StageStats};
use pool::WorkerPool;
use relation::{codec, ColumnBatch, Row, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Local worker threads executing map and reduce tasks.
    pub threads: usize,
    /// Worker threads handed to each reduce task's embedded DSMS for
    /// intra-operator parallelism (per-group GroupApply fan-out). Kept at
    /// 1 by default: stages with many reduce partitions already fill the
    /// task pool, so per-group threads would only oversubscribe. Raise it
    /// for group-heavy stages with few partitions.
    pub dsms_threads: usize,
    /// Fault-injection schedule (explicit kills and/or seeded faults).
    pub chaos: ChaosPlan,
    /// Per-task retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Verify integrity frames on map reads and shuffle fetches, and frame
    /// stage outputs. On by default; turning it off exists to measure the
    /// framing/verification overhead (corruption then degrades to
    /// transient faults, since it would be undetectable).
    pub integrity: bool,
    /// Shuffle memory budget. When set, map output merges in bounded
    /// waves, shuffle slots seal into bounded binary chunks, and sealed
    /// chunks beyond the budget spill to disk files — so a job whose
    /// shuffle exceeds RAM still runs to completion, with byte-identical
    /// output (spilling moves bytes, never changes them). `None` (the
    /// default) keeps everything in memory, one chunk per slot.
    pub memory_budget_bytes: Option<u64>,
    /// Directory for spill files. `None` uses `$TMPDIR/timr-spill`.
    /// Files are removed when their shuffle slot is dropped.
    pub spill_dir: Option<PathBuf>,
    /// Also measure what the shuffle would cost in the legacy text
    /// encoding (`StageStats::shuffle_bytes_text`). Off by default: the
    /// measurement pays the per-row text-encode CPU that the binary
    /// extent path exists to eliminate.
    pub measure_text_shuffle: bool,
    /// Which execution backend runs the tasks: the in-process thread pool
    /// (default) or real worker OS processes over Unix-domain sockets.
    pub backend: BackendKind,
    /// How often worker processes send heartbeat frames (process backend).
    pub heartbeat_interval: Duration,
    /// How long a worker may go silent before the scheduler declares it
    /// dead, reaps it, and reassigns its task (process backend). Must
    /// comfortably exceed `heartbeat_interval`; heartbeats come from a
    /// dedicated worker thread, so even a busy worker keeps beating.
    pub heartbeat_deadline: Duration,
    /// When the process scheduler launches speculative duplicates of
    /// straggling tasks.
    pub speculation: SpeculationPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            dsms_threads: 1,
            chaos: ChaosPlan::none(),
            retry: RetryPolicy::default(),
            integrity: true,
            memory_budget_bytes: None,
            spill_dir: None,
            measure_text_shuffle: false,
            backend: BackendKind::Threads,
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_deadline: Duration::from_secs(2),
            speculation: SpeculationPolicy::default(),
        }
    }
}

/// Lock a shuffle-slot mutex, ignoring poisoning: slot mutations happen
/// inside `catch_unwind`, so a poisoned lock cannot actually occur — but
/// an `unwrap()` here would turn a contained fault into a process abort.
pub(crate) fn lock_slot<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Map a dataset-read error to a task error: detected corruption is
/// retryable (the retry re-reads and, for shuffle, rebuilds), anything
/// else is deterministic and fatal.
pub(crate) fn read_error(e: MrError) -> TaskError {
    match e {
        MrError::Corrupt { what } => TaskError::Corrupt { what },
        other => TaskError::Fatal(Box::new(other)),
    }
}

/// The execution engine: runs stages against a [`Dfs`].
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    /// Task executor selected by `config.backend`.
    pub(crate) backend: Box<dyn Backend>,
    /// Pool handle threaded through [`ReducerContext`] into embedded
    /// DSMS executions.
    pub(crate) dsms_pool: Arc<WorkerPool>,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::with_config(ClusterConfig::default())
    }
}

/// Output of one map task: per-reduce-partition sub-buckets for a single
/// input extent, plus accounting.
pub(crate) struct MapTaskOut {
    pub(crate) sub: Vec<Vec<Row>>,
    pub(crate) rows_in: u64,
    pub(crate) rows_out: u64,
    pub(crate) bytes: u64,
    pub(crate) bytes_saved: u64,
    pub(crate) text_bytes: u64,
}

/// Map-phase accounting carried alongside the shuffle chunks.
struct MapPhase {
    map_rows: u64,
    map_rows_out: u64,
    shuffle_bytes: u64,
    shuffle_bytes_saved: u64,
    shuffle_bytes_text: u64,
    shuffle_bytes_binary: u64,
    spill_extents: u64,
    spill_bytes: u64,
    map_tasks: usize,
    map_time: Duration,
    shuffle_time: Duration,
}

/// Monotonic suffix keeping concurrent clusters' spill files distinct.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// One sealed chunk of a shuffle partition — the native transfer unit.
#[derive(Debug, PartialEq)]
pub(crate) enum ShuffleChunk {
    /// A framed binary columnar extent held in memory.
    Mem(Vec<u8>),
    /// A framed binary columnar extent spilled to a disk file under the
    /// memory budget. `bytes` is its expected length.
    Spilled { path: PathBuf, bytes: u64 },
    /// Rows that could not transpose into typed columns (ill-typed),
    /// guarded by a row-level frame.
    Rows(Vec<Row>, ExtentFrame),
}

impl Drop for ShuffleChunk {
    fn drop(&mut self) {
        if let ShuffleChunk::Spilled { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sealed chunk contents before placement (memory vs spill file).
enum ChunkData {
    Extent(Vec<u8>),
    Rows(Vec<Row>),
}

/// Accumulates one (input, partition) slice of the shuffle and seals it
/// into bounded chunks. Sealing is a pure function of the appended row
/// sequence and `target`, so the merge and a corruption rebuild produce
/// identical chunk boundaries — and, because the extent encoding is
/// canonical, identical bytes.
struct ChunkBuilder<'a> {
    schema: &'a Schema,
    target: u64,
    acc: Vec<Row>,
    acc_bytes: u64,
}

impl<'a> ChunkBuilder<'a> {
    fn new(schema: &'a Schema, target: u64) -> Self {
        ChunkBuilder {
            schema,
            target,
            acc: Vec::new(),
            acc_bytes: 0,
        }
    }

    /// Append one map task's rows; seals when the accumulator reaches the
    /// chunk target. Empty appends are no-ops (they cannot move the
    /// accumulator, so skipping them preserves determinism).
    fn append(
        &mut self,
        rows: Vec<Row>,
        sink: &mut dyn FnMut(ChunkData) -> Result<()>,
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        for r in &rows {
            self.acc_bytes += r.width() as u64;
        }
        if self.acc.is_empty() {
            self.acc = rows;
        } else {
            self.acc.extend(rows);
        }
        if self.acc_bytes >= self.target {
            self.seal(sink)?;
        }
        Ok(())
    }

    fn seal(&mut self, sink: &mut dyn FnMut(ChunkData) -> Result<()>) -> Result<()> {
        if self.acc.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.acc);
        self.acc_bytes = 0;
        let data =
            match ColumnBatch::from_rows(self.schema, &rows).and_then(|b| b.to_extent_bytes()) {
                Ok(bytes) => ChunkData::Extent(bytes),
                // Ill-typed rows cannot transpose; ship them as a legacy
                // row chunk instead.
                Err(_) => ChunkData::Rows(rows),
            };
        sink(data)
    }

    fn finish(mut self, sink: &mut dyn FnMut(ChunkData) -> Result<()>) -> Result<()> {
        self.seal(sink)
    }
}

/// One reduce partition's shuffled inputs: per stage input, the sealed
/// chunks produced by the deterministic merge — framed at seal time,
/// before any injected corruption, so every fetch can verify them.
pub(crate) struct ShuffleSlot {
    pub(crate) inputs: Vec<Vec<ShuffleChunk>>,
}

/// Deterministically damage a stored shuffle partition *without* updating
/// its integrity frames — verification must catch the damage. Binary
/// chunks (in memory or spilled) get a single byte flipped mid-buffer;
/// legacy row chunks lose a row.
pub(crate) fn corrupt_slot(slot: &mut ShuffleSlot) {
    for chunks in slot.inputs.iter_mut() {
        for chunk in chunks.iter_mut() {
            match chunk {
                ShuffleChunk::Mem(bytes) => {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0xFF;
                    return;
                }
                ShuffleChunk::Spilled { path, .. } => {
                    if let Ok(mut bytes) = std::fs::read(&*path) {
                        if !bytes.is_empty() {
                            let mid = bytes.len() / 2;
                            bytes[mid] ^= 0xFF;
                            if std::fs::write(&*path, &bytes).is_ok() {
                                return;
                            }
                        }
                    }
                }
                ShuffleChunk::Rows(rows, _) => {
                    rows.pop();
                    return;
                }
            }
        }
    }
    // An empty partition has no bytes to flip: plant a garbage chunk so
    // verification still has damage to detect (and rebuild removes it).
    if let Some(first) = slot.inputs.first_mut() {
        first.push(ShuffleChunk::Mem(vec![0xAB; 16]));
    }
}

/// Check every chunk of a shuffle slot against its integrity frames —
/// per-column frames inside binary extents, row frames for legacy chunks.
/// `Some(description)` on the first mismatch.
pub(crate) fn verify_slot(slot: &ShuffleSlot) -> Option<String> {
    for (i, chunks) in slot.inputs.iter().enumerate() {
        for (c, chunk) in chunks.iter().enumerate() {
            let why = match chunk {
                ShuffleChunk::Mem(bytes) => relation::extent::verify_extent(bytes)
                    .err()
                    .map(|e| e.to_string()),
                ShuffleChunk::Spilled { path, bytes } => match std::fs::read(path) {
                    Ok(data) if data.len() as u64 != *bytes => Some(format!(
                        "length mismatch: {} byte(s), spill manifest says {bytes}",
                        data.len()
                    )),
                    Ok(data) => relation::extent::verify_extent(&data)
                        .err()
                        .map(|e| e.to_string()),
                    Err(e) => Some(format!("spill file unreadable: {e}")),
                },
                ShuffleChunk::Rows(rows, frame) => frame.verify(rows).err(),
            };
            if let Some(why) = why {
                return Some(format!("shuffle input {i} chunk {c}: {why}"));
            }
        }
    }
    None
}

/// Re-run the producing side of one reduce partition: rescan every
/// (verified) input extent in the deterministic `(input, extent)` merge
/// order, re-apply the stage mapper, keep the rows assigned to `p`, and
/// re-seal with the same chunk target. Because the mapper and partitioner
/// are pure and sealing is deterministic, the rebuilt chunks are
/// byte-identical to the original merge — spilled chunks are rewritten in
/// place — so re-execution *is* recovery (paper §III-C.1).
fn rebuild_slot(
    env: &StageEnv<'_>,
    p: usize,
    slot: &mut ShuffleSlot,
) -> std::result::Result<(), TaskError> {
    let partitions = env.stage.partitions;
    for (i, dataset) in env.inputs.iter().enumerate() {
        let mut rebuilt: Vec<ChunkData> = Vec::new();
        {
            let mut sink = |data: ChunkData| {
                rebuilt.push(data);
                Ok(())
            };
            let mut builder = ChunkBuilder::new(&env.mapped_schemas[i], env.chunk_target);
            for (e, extent) in dataset.partitions.iter().enumerate() {
                dataset.verify_extent(e).map_err(read_error)?;
                let mapped = apply_mapper(env.stage, env.dsms_pool, i, e, 0, extent)?;
                let mut rows = Vec::new();
                for row in mapped.iter() {
                    if env.assigners[i].assign(row, partitions)? == p {
                        rows.push(row.clone());
                    }
                }
                builder.append(rows, &mut sink)?;
            }
            builder.finish(&mut sink)?;
        }
        // Put the rebuilt contents back where the originals lived:
        // spilled chunks are rewritten in place, everything else lands in
        // memory; surplus (planted) chunks are dropped.
        let n = rebuilt.len();
        let old = &mut slot.inputs[i];
        for (c, data) in rebuilt.into_iter().enumerate() {
            if let (Some(ShuffleChunk::Spilled { path, bytes }), ChunkData::Extent(enc)) =
                (old.get_mut(c), &data)
            {
                std::fs::write(&*path, enc).map_err(|e| TaskError::Transient {
                    message: format!("spill rewrite failed at `{}`: {e}", path.display()),
                })?;
                *bytes = enc.len() as u64;
                continue;
            }
            let new_chunk = match data {
                ChunkData::Extent(enc) => ShuffleChunk::Mem(enc),
                ChunkData::Rows(rows) => {
                    let frame = ExtentFrame::compute(&rows);
                    ShuffleChunk::Rows(rows, frame)
                }
            };
            if c < old.len() {
                old[c] = new_chunk;
            } else {
                old.push(new_chunk);
            }
        }
        old.truncate(n);
    }
    Ok(())
}

/// Decode one verified slot into per-input reduce forms: a concatenated
/// [`ColumnBatch`] when every chunk shipped binary, rows otherwise. A
/// decode failure still surfaces as corruption (the retry re-verifies
/// and rebuilds).
pub(crate) fn fetch_inputs(slot: &ShuffleSlot) -> std::result::Result<Vec<ReduceInput>, TaskError> {
    fn chunk_err(i: usize, c: usize, e: impl std::fmt::Display) -> TaskError {
        TaskError::Corrupt {
            what: format!("shuffle input {i} chunk {c}: {e}"),
        }
    }
    fn chunk_bytes(
        i: usize,
        c: usize,
        chunk: &ShuffleChunk,
    ) -> std::result::Result<ColumnBatch, TaskError> {
        match chunk {
            ShuffleChunk::Mem(bytes) => {
                ColumnBatch::from_extent_bytes(bytes).map_err(|e| chunk_err(i, c, e))
            }
            ShuffleChunk::Spilled { path, .. } => {
                let data = std::fs::read(path)
                    .map_err(|e| chunk_err(i, c, format!("spill file unreadable: {e}")))?;
                ColumnBatch::from_extent_bytes(&data).map_err(|e| chunk_err(i, c, e))
            }
            ShuffleChunk::Rows(..) => unreachable!("row chunks handled by the caller"),
        }
    }

    let mut out = Vec::with_capacity(slot.inputs.len());
    for (i, chunks) in slot.inputs.iter().enumerate() {
        let all_binary = !chunks.is_empty()
            && chunks
                .iter()
                .all(|ch| !matches!(ch, ShuffleChunk::Rows(..)));
        if all_binary {
            let mut batch: Option<ColumnBatch> = None;
            for (c, chunk) in chunks.iter().enumerate() {
                let decoded = chunk_bytes(i, c, chunk)?;
                match &mut batch {
                    None => batch = Some(decoded),
                    Some(b) => b.append(decoded).map_err(|e| chunk_err(i, c, e))?,
                }
            }
            out.push(ReduceInput::Batch(batch.expect("chunk list is non-empty")));
        } else {
            let mut rows = Vec::new();
            for (c, chunk) in chunks.iter().enumerate() {
                match chunk {
                    ShuffleChunk::Rows(r, _) => rows.extend(r.iter().cloned()),
                    binary => rows.append(&mut chunk_bytes(i, c, binary)?.to_rows()),
                }
            }
            out.push(ReduceInput::Rows(rows));
        }
    }
    Ok(out)
}

/// Run the stage mapper (when present) over one extent's rows. Borrowed
/// passthrough for mapper-less stages and identity inputs, so the
/// partition-only hot path copies nothing extra. Mapper errors are
/// deterministic (mappers are pure), hence fatal.
fn apply_mapper<'a>(
    stage: &Stage,
    dsms_pool: &Arc<WorkerPool>,
    input: usize,
    extent: usize,
    attempt: usize,
    rows: &'a [Row],
) -> std::result::Result<std::borrow::Cow<'a, [Row]>, TaskError> {
    let Some(mapper) = &stage.mapper else {
        return Ok(std::borrow::Cow::Borrowed(rows));
    };
    let ctx = MapperContext {
        stage: stage.name.clone(),
        input,
        extent,
        attempt,
        dsms_pool: Arc::clone(dsms_pool),
    };
    match mapper.map(&ctx, rows)? {
        Some(out) => Ok(std::borrow::Cow::Owned(out)),
        None => Ok(std::borrow::Cow::Borrowed(rows)),
    }
}

/// Scan one (already mapped) extent and split it into per-partition
/// sub-buckets. Runs on the worker pool, one call per `(input, extent)`
/// pair. `rows_in` is the raw extent size before map-side compute.
fn map_extent(
    rows_in: u64,
    mapped: &[Row],
    partitioner: &CompiledPartitioner,
    partitions: usize,
    measure_text: bool,
) -> std::result::Result<MapTaskOut, TaskError> {
    let mut sub: Vec<Vec<Row>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut bytes = 0u64;
    let mut text_bytes = 0u64;
    let mut line = String::new();
    for row in mapped {
        bytes += row.width() as u64;
        if measure_text {
            line.clear();
            codec::encode_row_into(row, &mut line);
            text_bytes += line.len() as u64 + 1;
        }
        let p = partitioner.assign(row, partitions)?;
        sub[p].push(row.clone());
    }
    Ok(MapTaskOut {
        sub,
        rows_in,
        rows_out: mapped.len() as u64,
        bytes,
        bytes_saved: 0,
        text_bytes,
    })
}

/// One map task attempt: scan input `i` extent `e`, apply the stage
/// mapper, and split the rows into per-partition sub-buckets. Shared by
/// both backends (thread workers call it in place, process workers call
/// it in their own address space), so whichever backend executes the
/// task, the rows it contributes are identical.
pub(crate) fn run_map_task(
    env: &StageEnv<'_>,
    i: usize,
    e: usize,
    attempt: usize,
    corrupt: bool,
) -> std::result::Result<MapTaskOut, TaskError> {
    if corrupt {
        // A bad replica read: the extent this attempt saw does not match
        // its frame. The retry re-reads.
        return Err(TaskError::Corrupt {
            what: format!("injected bad read of input {i} extent {e}"),
        });
    }
    // The first read consumes the very buffer the frame was computed
    // from, so verifying it would hash memory against itself. A retry
    // models a re-read from another replica — that boundary crossing is
    // verified.
    if env.config.integrity && attempt > 0 {
        env.inputs[i].verify_extent(e).map_err(read_error)?;
    }
    // Map-side compute runs here, inside the chaos/retry/integrity
    // envelope, before partitioning.
    let raw = &env.inputs[i].partitions[e];
    let mapped = apply_mapper(env.stage, env.dsms_pool, i, e, attempt, raw)?;
    let mut out = map_extent(
        raw.len() as u64,
        &mapped,
        &env.assigners[i],
        env.stage.partitions,
        env.config.measure_text_shuffle,
    )?;
    if env.stage.mapper.is_some() {
        let raw_bytes: u64 = raw.iter().map(|r| r.width() as u64).sum();
        out.bytes_saved = raw_bytes.saturating_sub(out.bytes);
    }
    Ok(out)
}

/// One shuffle-fetch attempt for reduce partition `p`: apply any injected
/// corruption to the stored slot, verify every chunk against its
/// integrity frames (rebuilding from the source extents on a mismatch,
/// then failing the attempt so the retry sees repaired data), and decode
/// the verified chunks into reduce-input form.
pub(crate) fn run_shuffle_fetch(
    env: &StageEnv<'_>,
    p: usize,
    corrupt: bool,
    slot: &mut ShuffleSlot,
) -> std::result::Result<Vec<ReduceInput>, TaskError> {
    if corrupt {
        corrupt_slot(slot);
    }
    if env.config.integrity {
        if let Some(why) = verify_slot(slot) {
            rebuild_slot(env, p, slot)?;
            return Err(TaskError::Corrupt { what: why });
        }
    }
    fetch_inputs(slot)
}

/// One reduce attempt for partition `p` over already-fetched inputs. The
/// reducer is a pure function of the (verified) partition, so every retry
/// — on any backend — reproduces the same rows.
pub(crate) fn run_reduce_task(
    env: &StageEnv<'_>,
    p: usize,
    attempt: usize,
    fetched: &[ReduceInput],
) -> std::result::Result<ReduceOut, TaskError> {
    let ctx = ReducerContext {
        stage: env.stage.name.clone(),
        partition: p,
        partitions: env.stage.partitions,
        attempt,
        dsms_pool: Arc::clone(env.dsms_pool),
    };
    let start = Instant::now();
    let out = env.stage.reducer.reduce_shuffled_multi(&ctx, fetched)?;
    if out.len() != env.expected_sinks {
        return Err(TaskError::Fatal(Box::new(MrError::BadStage(format!(
            "stage `{}` reducer produced {} sink(s), stage declares {}",
            env.stage.name,
            out.len(),
            env.expected_sinks
        )))));
    }
    Ok((out, start.elapsed()))
}

impl Cluster {
    /// Cluster with default configuration.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Cluster with explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Self {
        let backend: Box<dyn Backend> = match config.backend {
            BackendKind::Threads => Box::new(ThreadBackend::new(config.threads)),
            #[cfg(unix)]
            BackendKind::Processes { workers } => {
                Box::new(crate::process::ProcessBackend::new(workers))
            }
            #[cfg(not(unix))]
            BackendKind::Processes { workers } => Box::new(ThreadBackend::new(workers)),
        };
        let dsms_pool = Arc::new(WorkerPool::new(config.dsms_threads));
        Cluster {
            config,
            backend,
            dsms_pool,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Seal threshold for one (input, partition) chunk accumulator: a
    /// fraction of the memory budget so accumulators plus the in-memory
    /// chunk pool stay bounded. Unbudgeted runs never seal early (one
    /// chunk per slot, the pre-budget behavior).
    fn chunk_target(&self, inputs: usize, partitions: usize) -> u64 {
        match self.config.memory_budget_bytes {
            None => u64::MAX,
            Some(b) => (b / (inputs.max(1) as u64 * partitions.max(1) as u64 * 4))
                .clamp(32 * 1024, 256 * 1024 * 1024),
        }
    }

    /// A fresh spill file path (unique per process and sequence number).
    fn spill_path(&self, stage: &str) -> Result<PathBuf> {
        let dir = self
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("timr-spill"));
        std::fs::create_dir_all(&dir).map_err(|e| MrError::Io {
            what: "create spill dir".to_string(),
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let tag: String = stage
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Ok(dir.join(format!("{tag}-{}-{seq}.extent", std::process::id())))
    }

    /// Place one sealed chunk: binary extents stay in memory until the
    /// budget is reached, then spill to disk; legacy row chunks stay in
    /// memory (they are the rare ill-typed fallback). Placement never
    /// changes bytes, so it cannot affect output — only where they live.
    #[allow(clippy::too_many_arguments)]
    fn place_chunk(
        &self,
        stage_name: &str,
        data: ChunkData,
        mem_held: &mut u64,
        binary_bytes: &mut u64,
        spill_extents: &mut u64,
        spill_bytes: &mut u64,
        out: &mut Vec<ShuffleChunk>,
    ) -> Result<()> {
        match data {
            ChunkData::Rows(rows) => {
                let frame = ExtentFrame::compute(&rows);
                out.push(ShuffleChunk::Rows(rows, frame));
            }
            ChunkData::Extent(bytes) => {
                let len = bytes.len() as u64;
                *binary_bytes += len;
                let over_budget = self
                    .config
                    .memory_budget_bytes
                    .is_some_and(|b| *mem_held + len > b);
                if over_budget {
                    let path = self.spill_path(stage_name)?;
                    std::fs::write(&path, &bytes).map_err(|e| MrError::Io {
                        what: "write spill extent".to_string(),
                        path: path.display().to_string(),
                        message: e.to_string(),
                    })?;
                    *spill_extents += 1;
                    *spill_bytes += len;
                    out.push(ShuffleChunk::Spilled { path, bytes: len });
                } else {
                    *mem_held += len;
                    out.push(ShuffleChunk::Mem(bytes));
                }
            }
        }
        Ok(())
    }

    /// Parallel map/shuffle: one map task per input extent on the worker
    /// pool, then a deterministic merge that seals per-partition chunk
    /// accumulators into framed binary extents (spilling past the memory
    /// budget).
    ///
    /// Returns `chunks[input][partition]` encoding exactly the rows the
    /// serial scan would produce, in the same order: tasks are merged in
    /// `(input, extent)` order and each task preserves row order within
    /// its extent, so the shuffle output is independent of thread count,
    /// scheduling, and injected faults — the repeatability property
    /// (paper §III-C.1) that restart determinism is built on. Under a
    /// memory budget, map tasks run in bounded waves so unmerged task
    /// output never exceeds a few extents per worker.
    fn map_shuffle(
        &self,
        env: &StageEnv<'_>,
        exec: &mut (dyn StageExec<'_> + '_),
    ) -> Result<(Vec<Vec<Vec<ShuffleChunk>>>, MapPhase)> {
        let stage = env.stage;
        let inputs = env.inputs;
        // One map task per (input, extent), in deterministic order.
        let tasks: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(i, d)| (0..d.partitions.len()).map(move |e| (i, e)))
            .collect();
        let mut chunks: Vec<Vec<Vec<ShuffleChunk>>> = inputs
            .iter()
            .map(|_| (0..stage.partitions).map(|_| Vec::new()).collect())
            .collect();
        let mut builders: Vec<Vec<ChunkBuilder<'_>>> = env
            .mapped_schemas
            .iter()
            .map(|schema| {
                (0..stage.partitions)
                    .map(|_| ChunkBuilder::new(schema, env.chunk_target))
                    .collect()
            })
            .collect();
        let mut mem_held = 0u64;
        let mut binary_bytes = 0u64;
        let mut spill_extents = 0u64;
        let mut spill_bytes = 0u64;
        let mut map_rows = 0u64;
        let mut map_rows_out = 0u64;
        let mut shuffle_bytes = 0u64;
        let mut shuffle_bytes_saved = 0u64;
        let mut shuffle_bytes_text = 0u64;
        let mut map_time = Duration::ZERO;
        let mut shuffle_time = Duration::ZERO;

        // Unbudgeted runs execute every task in one wave (maximum
        // parallelism); budgeted runs bound the unmerged task output held
        // in memory to one wave's worth.
        let parallelism = match self.config.backend {
            BackendKind::Threads => self.config.threads,
            BackendKind::Processes { workers } => workers,
        };
        let wave = if self.config.memory_budget_bytes.is_some() {
            parallelism.max(1) * 2
        } else {
            tasks.len().max(1)
        };
        for (w, wave_tasks) in tasks.chunks(wave).enumerate() {
            let base = w * wave;
            let map_start = Instant::now();
            let results: Vec<Result<MapTaskOut>> = exec.run_map(base, wave_tasks);
            map_time += map_start.elapsed();

            // Merge sub-buckets in task order == (input, extent) order.
            // Errors propagate from the lowest task index so failure is
            // deterministic too.
            let merge_start = Instant::now();
            for (k, out) in results.into_iter().enumerate() {
                let (i, _) = tasks[base + k];
                let mut out = out?;
                map_rows += out.rows_in;
                map_rows_out += out.rows_out;
                shuffle_bytes += out.bytes;
                shuffle_bytes_saved += out.bytes_saved;
                shuffle_bytes_text += out.text_bytes;
                for (p, sub) in out.sub.iter_mut().enumerate() {
                    builders[i][p].append(std::mem::take(sub), &mut |data| {
                        self.place_chunk(
                            &stage.name,
                            data,
                            &mut mem_held,
                            &mut binary_bytes,
                            &mut spill_extents,
                            &mut spill_bytes,
                            &mut chunks[i][p],
                        )
                    })?;
                }
            }
            shuffle_time += merge_start.elapsed();
        }

        // Seal whatever the accumulators still hold.
        let finish_start = Instant::now();
        for (i, per_input) in builders.into_iter().enumerate() {
            for (p, builder) in per_input.into_iter().enumerate() {
                builder.finish(&mut |data| {
                    self.place_chunk(
                        &stage.name,
                        data,
                        &mut mem_held,
                        &mut binary_bytes,
                        &mut spill_extents,
                        &mut spill_bytes,
                        &mut chunks[i][p],
                    )
                })?;
            }
        }
        shuffle_time += finish_start.elapsed();

        Ok((
            chunks,
            MapPhase {
                map_rows,
                map_rows_out,
                shuffle_bytes,
                shuffle_bytes_saved,
                shuffle_bytes_text,
                shuffle_bytes_binary: binary_bytes,
                spill_extents,
                spill_bytes,
                map_tasks: tasks.len(),
                map_time,
                shuffle_time,
            },
        ))
    }

    /// Run one stage: map (partition) each input dataset in parallel, then
    /// reduce each partition on the thread pool, writing the output
    /// dataset to the DFS only after every partition has succeeded.
    pub fn run_stage(&self, dfs: &Dfs, stage: &Stage) -> Result<StageStats> {
        if self.config.chaos.injects_panics() {
            chaos::install_quiet_injected_panic_hook();
        }
        let wall_start = Instant::now();
        let inputs: Vec<Dataset> = stage
            .inputs
            .iter()
            .map(|n| dfs.get(n))
            .collect::<Result<Vec<_>>>()?;
        // Mapper fragments rewrite rows before partitioning, so everything
        // downstream of the map phase — partitioners, chunk builders,
        // rebuilds, reducer sink schemas — sees the *mapped* schema.
        let mapped_schemas: Vec<Schema> = match stage.mapper.as_ref() {
            Some(m) => inputs
                .iter()
                .enumerate()
                .map(|(i, d)| m.output_schema(i, &d.schema))
                .collect::<Result<Vec<_>>>()?,
            None => inputs.iter().map(|d| d.schema.clone()).collect(),
        };
        // One compiled partitioner per input (schemas can differ); shared
        // by the map phase and shuffle-partition rebuilds.
        let assigners = mapped_schemas
            .iter()
            .map(|schema| stage.partitioner.compile(schema))
            .collect::<Result<Vec<_>>>()?;
        // Sink schemas and arity are validated before any worker spawns,
        // so a misconfigured stage never pays a fork (and worker
        // processes inherit the schemas for result encoding).
        let expected_sinks = 1 + stage.aux_outputs.len();
        let sink_schemas = stage.reducer.sink_schemas(&mapped_schemas)?;
        if sink_schemas.len() != expected_sinks {
            return Err(MrError::BadStage(format!(
                "stage `{}` declares {} sink schema(s) but {} sink name(s)",
                stage.name,
                sink_schemas.len(),
                expected_sinks
            )));
        }
        let counters = FaultCounters::default();
        let env = StageEnv {
            stage,
            inputs: &inputs,
            mapped_schemas: &mapped_schemas,
            assigners: &assigners,
            sink_schemas: &sink_schemas,
            config: &self.config,
            counters: &counters,
            dsms_pool: &self.dsms_pool,
            chunk_target: self.chunk_target(inputs.len(), stage.partitions),
            expected_sinks,
        };
        let mut exec = self.backend.begin(&env)?;

        // ---- map / shuffle ----
        let (mut chunks, map_phase) = match self.map_shuffle(&env, exec.as_mut()) {
            Ok(out) => out,
            Err(e) => {
                // Release (and, on the process backend, reap) workers
                // before surfacing the map-phase error.
                let _ = exec.finish();
                return Err(e);
            }
        };

        // ---- reduce ----
        // Transpose chunks into per-partition slots once; workers (and
        // every restart attempt) read the same sealed chunks — framed at
        // seal time, before any injected corruption touches the slot.
        let reduce_start = Instant::now();
        let shuffle: Vec<Mutex<ShuffleSlot>> = (0..stage.partitions)
            .map(|p| {
                let slot_inputs: Vec<Vec<ShuffleChunk>> = chunks
                    .iter_mut()
                    .map(|per_input| std::mem::take(&mut per_input[p]))
                    .collect();
                Mutex::new(ShuffleSlot {
                    inputs: slot_inputs,
                })
            })
            .collect();

        let results: Vec<Result<ReduceOut>> = exec.run_reduce(&shuffle);
        // Shut the backend down before inspecting results: even when a
        // partition failed, workers are reaped (no orphan processes on
        // any path). A task error takes precedence over a shutdown error.
        let finished = exec.finish();
        drop(exec);

        // ---- collect ----
        // Nothing is published until every partition result is Ok, so a
        // failed attempt can never leave partial output in the DFS.
        let mut sinks_out: Vec<Vec<Vec<Row>>> = (0..expected_sinks)
            .map(|_| Vec::with_capacity(stage.partitions))
            .collect();
        let mut sink_rows = vec![0u64; expected_sinks];
        let mut partition_times = Vec::with_capacity(stage.partitions);
        let mut output_rows = 0u64;
        for result in results {
            let (per_sink, took) = result?;
            partition_times.push(took);
            for (sink, rows) in per_sink.into_iter().enumerate() {
                output_rows += rows.len() as u64;
                sink_rows[sink] += rows.len() as u64;
                sinks_out[sink].push(rows);
            }
        }
        finished?;
        let reduce_wall_time = reduce_start.elapsed();

        for ((name, out_schema), partitions_out) in
            stage.sink_names().zip(sink_schemas).zip(sinks_out)
        {
            let output = if self.config.integrity {
                Dataset::partitioned(out_schema, partitions_out)
            } else {
                Dataset::partitioned_unframed(out_schema, partitions_out)
            };
            dfs.put_overwrite(name, output);
        }

        Ok(StageStats {
            name: stage.name.clone(),
            map_rows: map_phase.map_rows,
            map_rows_in: map_phase.map_rows,
            map_rows_out: map_phase.map_rows_out,
            shuffle_bytes_saved: map_phase.shuffle_bytes_saved,
            map_tasks: map_phase.map_tasks,
            map_time: map_phase.map_time,
            shuffle_time: map_phase.shuffle_time,
            shuffle_bytes: map_phase.shuffle_bytes,
            shuffle_bytes_text: map_phase.shuffle_bytes_text,
            shuffle_bytes_binary: map_phase.shuffle_bytes_binary,
            spill_extents: map_phase.spill_extents,
            spill_bytes: map_phase.spill_bytes,
            reduce_wall_time,
            output_rows,
            sink_rows,
            partitions: stage.partitions,
            partition_times,
            wall_time: wall_start.elapsed(),
            task_retries: counters.retries.load(Ordering::Relaxed),
            panics_contained: counters.panics.load(Ordering::Relaxed),
            transient_faults: counters.transients.load(Ordering::Relaxed),
            corruption_detected: counters.corruptions.load(Ordering::Relaxed),
            delays_injected: counters.delays.load(Ordering::Relaxed),
            backoff_time: Duration::from_nanos(counters.backoff_ns.load(Ordering::Relaxed)),
            heartbeats_missed: counters.heartbeats_missed.load(Ordering::Relaxed),
            tasks_timed_out: counters.timeouts.load(Ordering::Relaxed),
            speculative_launched: counters.spec_launched.load(Ordering::Relaxed),
            speculative_wins: counters.spec_wins.load(Ordering::Relaxed),
            workers_lost: counters.workers_lost.load(Ordering::Relaxed),
        })
    }

    /// Run stages in order, returning accumulated statistics.
    pub fn run_job(&self, dfs: &Dfs, stages: &[Stage]) -> Result<JobStats> {
        let mut stats = JobStats::default();
        for stage in stages {
            stats.stages.push(self.run_stage(dfs, stage)?);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{IdentityReducer, Mapper, Partitioner, Reducer, ReducerRef};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("UserId", ColumnType::Str)])
    }

    fn input_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, format!("u{}", i % 7)])
            .collect()
    }

    fn dfs_with_input(n: usize) -> Dfs {
        let dfs = Dfs::new();
        dfs.put("in", Dataset::single(schema(), input_rows(n)))
            .unwrap();
        dfs
    }

    /// Counts rows per partition — sensitive to partitioning, so restart
    /// determinism is observable.
    #[derive(Debug)]
    struct CountReducer;

    impl Reducer for CountReducer {
        fn output_schema(&self, _inputs: &[Schema]) -> Result<Schema> {
            Ok(Schema::new(vec![
                Field::new("Partition", ColumnType::Long),
                Field::new("N", ColumnType::Long),
            ]))
        }

        fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
            let n: usize = inputs.iter().map(Vec::len).sum();
            Ok(vec![row![ctx.partition as i64, n as i64]])
        }
    }

    fn count_stage(partitions: usize) -> Stage {
        Stage::new(
            "count",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            partitions,
            Arc::new(CountReducer),
        )
        .unwrap()
    }

    fn config(threads: usize, chaos: ChaosPlan, max_attempts: usize) -> ClusterConfig {
        ClusterConfig {
            threads,
            chaos,
            retry: RetryPolicy::no_backoff(max_attempts),
            ..ClusterConfig::default()
        }
    }

    /// Splits rows across two sinks by key parity — exercises the
    /// multi-sink publish path (`aux_outputs`).
    #[derive(Debug)]
    struct SplitReducer;

    impl Reducer for SplitReducer {
        fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
            Ok(inputs[0].clone())
        }

        fn sink_count(&self) -> usize {
            2
        }

        fn sink_schemas(&self, inputs: &[Schema]) -> Result<Vec<Schema>> {
            Ok(vec![inputs[0].clone(), inputs[0].clone()])
        }

        fn reduce(&self, _ctx: &ReducerContext, _inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
            unreachable!("multi-sink reducer is driven through reduce_shuffled_multi")
        }

        fn reduce_shuffled_multi(
            &self,
            _ctx: &ReducerContext,
            inputs: &[ReduceInput],
        ) -> Result<Vec<Vec<Row>>> {
            let mut even = Vec::new();
            let mut odd = Vec::new();
            for input in inputs {
                for r in input.to_rows() {
                    let ts = r.get(0).as_long().unwrap();
                    if ts % 2 == 0 {
                        even.push(r);
                    } else {
                        odd.push(r);
                    }
                }
            }
            Ok(vec![even, odd])
        }
    }

    #[test]
    fn multi_sink_stage_publishes_every_sink() {
        let dfs = dfs_with_input(40);
        let stage = Stage::new(
            "split",
            vec!["in".into()],
            "even",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            4,
            Arc::new(SplitReducer),
        )
        .unwrap()
        .with_aux_outputs(vec!["odd".into()]);
        let stats = Cluster::new().run_stage(&dfs, &stage).unwrap();
        let even = dfs.get("even").unwrap().scan();
        let odd = dfs.get("odd").unwrap().scan();
        assert_eq!(even.len() + odd.len(), 40);
        assert!(even.iter().all(|r| r.get(0).as_long().unwrap() % 2 == 0));
        assert!(odd.iter().all(|r| r.get(0).as_long().unwrap() % 2 == 1));
        assert_eq!(stats.output_rows, 40);
        assert_eq!(stats.sink_rows, vec![even.len() as u64, odd.len() as u64]);
    }

    #[test]
    fn single_sink_stats_report_one_sink() {
        let dfs = dfs_with_input(10);
        let stats = Cluster::new().run_stage(&dfs, &count_stage(2)).unwrap();
        assert_eq!(stats.sink_rows.len(), 1);
        assert_eq!(stats.sink_rows[0], stats.output_rows);
    }

    #[test]
    fn rows_with_same_key_land_in_same_partition() {
        let dfs = dfs_with_input(100);
        let cluster = Cluster::new();
        let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
        assert_eq!(stats.map_rows, 100);
        let out = dfs.get("out").unwrap();
        let total: i64 = out.scan().iter().map(|r| r.get(1).as_long().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn identity_stage_preserves_all_rows() {
        let dfs = dfs_with_input(50);
        let r: ReducerRef = Arc::new(IdentityReducer);
        let stage = Stage::new("id", vec!["in".into()], "copy", Partitioner::Spread, 8, r).unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        let mut original = dfs.get("in").unwrap().scan();
        let mut copied = dfs.get("copy").unwrap().scan();
        original.sort();
        copied.sort();
        assert_eq!(original, copied);
    }

    #[test]
    fn output_is_identical_with_and_without_injected_failures() {
        // Multi-extent input so the parallel map phase actually has
        // several tasks whose merge order matters.
        let multi_extent_input = || {
            let rows = input_rows(400);
            Dataset::partitioned(schema(), rows.chunks(100).map(|c| c.to_vec()).collect())
        };
        // Returns (shuffle buckets, output partitions, stats) for one run.
        let run = |threads: usize, chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(threads, chaos, 3));
            let stage = count_stage(4);
            let inputs = vec![dfs.get("in").unwrap()];
            let mapped_schemas = vec![inputs[0].schema.clone()];
            let assigners = vec![stage.partitioner.compile(&inputs[0].schema).unwrap()];
            let sink_schemas = stage.reducer.sink_schemas(&mapped_schemas).unwrap();
            let counters = FaultCounters::default();
            let env = StageEnv {
                stage: &stage,
                inputs: &inputs,
                mapped_schemas: &mapped_schemas,
                assigners: &assigners,
                sink_schemas: &sink_schemas,
                config: cluster.config(),
                counters: &counters,
                dsms_pool: &cluster.dsms_pool,
                chunk_target: u64::MAX,
                expected_sinks: 1,
            };
            let mut exec = cluster.backend.begin(&env).unwrap();
            let (buckets, _) = cluster.map_shuffle(&env, exec.as_mut()).unwrap();
            exec.finish().unwrap();
            drop(exec);
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            let out = dfs.get("out").unwrap().partitions.as_ref().clone();
            (buckets, out, stats)
        };

        let (serial_buckets, clean, s1) = run(1, ChaosPlan::none());
        let (parallel_buckets, parallel_clean, _) = run(8, ChaosPlan::none());
        let (killed_buckets, with_failures, s2) = run(
            8,
            ChaosPlan::none().kill("count", TaskPhase::Reduce, 1).kill(
                "count",
                TaskPhase::Reduce,
                3,
            ),
        );

        // Shuffle buckets must be byte-identical across thread counts and
        // failure plans: the deterministic (input, extent) merge order.
        assert_eq!(
            serial_buckets, parallel_buckets,
            "shuffle must be independent of thread count"
        );
        assert_eq!(
            serial_buckets, killed_buckets,
            "shuffle must be independent of injected failures"
        );
        // And so must the reduce outputs.
        assert_eq!(
            clean, parallel_clean,
            "output must be independent of thread count"
        );
        assert_eq!(clean, with_failures, "restart must be deterministic");
        assert_eq!(s1.map_tasks, 4, "one map task per input extent");
        assert_eq!(s1.task_retries, 0);
        assert_eq!(s2.task_retries, 2);
        assert_eq!(s2.transient_faults, 2);
    }

    #[test]
    fn kills_reach_map_and_shuffle_tasks_too() {
        // The old FailurePlan could only target reduce tasks; ChaosPlan
        // kills any phase, and the run still converges to identical bytes.
        let multi_extent_input = || {
            let rows = input_rows(300);
            Dataset::partitioned(schema(), rows.chunks(75).map(|c| c.to_vec()).collect())
        };
        let run = |chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(4, chaos, 3));
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
        };
        let (clean, s0) = run(ChaosPlan::none());
        let (killed, s1) = run(ChaosPlan::none()
            .kill("count", TaskPhase::Map, 0)
            .kill("count", TaskPhase::Map, 3)
            .kill("count", TaskPhase::Shuffle, 2)
            .kill("count", TaskPhase::Reduce, 1));
        assert_eq!(clean, killed);
        assert_eq!(s0.task_retries, 0);
        assert_eq!(s1.task_retries, 4);
        assert_eq!(s1.transient_faults, 4);
    }

    #[test]
    fn injected_corruption_is_detected_and_recovered() {
        let multi_extent_input = || {
            let rows = input_rows(200);
            Dataset::partitioned(schema(), rows.chunks(50).map(|c| c.to_vec()).collect())
        };
        let run = |chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(4, chaos, 3));
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
        };
        let (clean, _) = run(ChaosPlan::none());
        // One corrupted map read and one corrupted (actually mutated, then
        // rebuilt) shuffle partition.
        let (recovered, stats) = run(ChaosPlan::none()
            .corrupt("count", TaskPhase::Map, 1)
            .corrupt("count", TaskPhase::Shuffle, 2));
        assert_eq!(clean, recovered, "recovery must reproduce clean bytes");
        assert_eq!(stats.corruption_detected, 2);
        assert_eq!(stats.task_retries, 2);
    }

    #[test]
    fn injected_panics_are_contained_and_retried() {
        let dfs = dfs_with_input(60);
        let chaos = ChaosPlan::seeded(11).with_panics(0.4).with_fault_cap(2);
        let cluster = Cluster::with_config(config(4, chaos, 4));
        let stats = cluster.run_stage(&dfs, &count_stage(6)).unwrap();
        assert!(
            stats.panics_contained > 0,
            "p=0.4 over ≥13 task coordinates should panic at least once"
        );
        let clean_dfs = dfs_with_input(60);
        Cluster::with_config(config(1, ChaosPlan::none(), 1))
            .run_stage(&clean_dfs, &count_stage(6))
            .unwrap();
        assert_eq!(
            dfs.get("out").unwrap().partitions,
            clean_dfs.get("out").unwrap().partitions
        );
    }

    #[test]
    fn parallel_map_preserves_serial_scan_order() {
        // An identity stage over a multi-extent input: with a single
        // reduce partition, the output must equal the serial scan order
        // exactly (not just as a multiset), for any thread count.
        let rows = input_rows(250);
        let extents: Vec<Vec<Row>> = rows.chunks(50).map(|c| c.to_vec()).collect();
        let expected = rows;
        for threads in [1, 2, 8] {
            let dfs = Dfs::new();
            dfs.put("in", Dataset::partitioned(schema(), extents.clone()))
                .unwrap();
            let cluster = Cluster::with_config(config(threads, ChaosPlan::none(), 1));
            let stage = Stage::new(
                "id",
                vec!["in".into()],
                "out",
                Partitioner::Single,
                1,
                Arc::new(IdentityReducer) as ReducerRef,
            )
            .unwrap();
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            assert_eq!(stats.map_tasks, 5);
            assert_eq!(
                dfs.get("out").unwrap().scan(),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn exhaustion_names_stage_phase_partition_and_attempts() {
        for (phase, task) in [
            (TaskPhase::Map, 0),
            (TaskPhase::Shuffle, 1),
            (TaskPhase::Reduce, 0),
        ] {
            let dfs = dfs_with_input(10);
            let cluster =
                Cluster::with_config(config(1, ChaosPlan::none().kill("count", phase, task), 1));
            let err = cluster.run_stage(&dfs, &count_stage(2)).unwrap_err();
            match &err {
                MrError::TaskExhausted {
                    stage,
                    phase: got_phase,
                    partition,
                    attempts,
                    last,
                } => {
                    assert_eq!(stage, "count");
                    assert_eq!(*got_phase, phase);
                    assert_eq!(*partition, task);
                    assert_eq!(*attempts, 1);
                    assert!(matches!(**last, TaskError::Transient { .. }));
                }
                other => panic!("expected TaskExhausted, got {other:?}"),
            }
            // Partial outputs of the failed stage must never be visible.
            assert!(!dfs.contains("out"), "phase {phase}: no partial output");
        }
    }

    #[test]
    fn exhaustion_error_is_deterministic_across_threads() {
        let run = |threads: usize| {
            let dfs = dfs_with_input(40);
            let chaos = ChaosPlan::seeded(3).with_transients(1.0);
            Cluster::with_config(config(threads, chaos, 2))
                .run_stage(&dfs, &count_stage(4))
                .unwrap_err()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel, "failure must be deterministic too");
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn genuine_reducer_panic_is_contained_and_exhausts_deterministically() {
        #[derive(Debug)]
        struct PanickyReducer;
        impl Reducer for PanickyReducer {
            fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
                Ok(inputs[0].clone())
            }
            fn reduce(&self, ctx: &ReducerContext, _: &[Vec<Row>]) -> Result<Vec<Row>> {
                panic!("reducer bug in partition {}", ctx.partition);
            }
        }
        let dfs = dfs_with_input(10);
        let stage = Stage::new(
            "boom",
            vec!["in".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(PanickyReducer) as ReducerRef,
        )
        .unwrap();
        let cluster = Cluster::with_config(config(2, ChaosPlan::none(), 2));
        let err = cluster.run_stage(&dfs, &stage).unwrap_err();
        match err {
            MrError::TaskExhausted {
                phase,
                attempts,
                last,
                ..
            } => {
                assert_eq!(phase, TaskPhase::Reduce);
                assert_eq!(attempts, 2, "a genuine panic is retried, then exhausts");
                match *last {
                    TaskError::Panicked { payload } => {
                        assert_eq!(payload, "reducer bug in partition 0")
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
            other => panic!("expected TaskExhausted, got {other:?}"),
        }
        assert!(!dfs.contains("out"));
    }

    #[test]
    fn multi_input_stage_delivers_per_input_rows() {
        #[derive(Debug)]
        struct AritiesReducer;
        impl Reducer for AritiesReducer {
            fn output_schema(&self, _: &[Schema]) -> Result<Schema> {
                Ok(Schema::new(vec![
                    Field::new("A", ColumnType::Long),
                    Field::new("B", ColumnType::Long),
                ]))
            }
            fn reduce(&self, _: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
                Ok(vec![row![inputs[0].len() as i64, inputs[1].len() as i64]])
            }
        }
        let dfs = Dfs::new();
        dfs.put("a", Dataset::single(schema(), input_rows(5)))
            .unwrap();
        dfs.put("b", Dataset::single(schema(), input_rows(9)))
            .unwrap();
        let stage = Stage::new(
            "two",
            vec!["a".into(), "b".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(AritiesReducer),
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        assert_eq!(dfs.get("out").unwrap().scan(), vec![row![5i64, 9i64]]);
    }

    #[test]
    fn memory_budget_spills_and_output_is_identical() {
        let multi_extent_input = || {
            let rows = input_rows(600);
            Dataset::partitioned(schema(), rows.chunks(100).map(|c| c.to_vec()).collect())
        };
        let run = |budget: Option<u64>| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let spill = tempdir();
            let cluster = Cluster::with_config(ClusterConfig {
                threads: 4,
                memory_budget_bytes: budget,
                spill_dir: Some(spill.clone()),
                ..ClusterConfig::default()
            });
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            let out = dfs.get("out").unwrap().partitions.as_ref().clone();
            std::fs::remove_dir_all(&spill).ok();
            (out, stats)
        };
        let (unbudgeted, s0) = run(None);
        let (budgeted, s1) = run(Some(1024));
        assert_eq!(s0.spill_extents, 0, "no budget, no spill");
        assert!(
            s1.spill_extents > 0,
            "a 1 KiB budget must force extents to disk"
        );
        assert!(s1.spill_bytes > 0);
        assert!(s1.shuffle_bytes_binary > 0);
        assert_eq!(
            unbudgeted, budgeted,
            "spilling must never change output bytes"
        );
    }

    #[test]
    fn spilled_chunk_corruption_is_detected_and_recovered() {
        let multi_extent_input = || {
            let rows = input_rows(400);
            Dataset::partitioned(schema(), rows.chunks(100).map(|c| c.to_vec()).collect())
        };
        let run = |chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let spill = tempdir();
            let cluster = Cluster::with_config(ClusterConfig {
                threads: 4,
                chaos,
                retry: RetryPolicy::no_backoff(3),
                memory_budget_bytes: Some(1024),
                spill_dir: Some(spill.clone()),
                ..ClusterConfig::default()
            });
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            let out = dfs.get("out").unwrap().partitions.as_ref().clone();
            std::fs::remove_dir_all(&spill).ok();
            (out, stats)
        };
        let (clean, _) = run(ChaosPlan::none());
        let (recovered, stats) = run(ChaosPlan::none().corrupt("count", TaskPhase::Shuffle, 1));
        assert_eq!(
            clean, recovered,
            "spilled rebuild must reproduce clean bytes"
        );
        assert_eq!(stats.corruption_detected, 1);
        assert_eq!(stats.task_retries, 1);
    }

    #[test]
    fn well_typed_shuffle_delivers_columnar_batches() {
        // A reducer that refuses row-shaped input: proves the shuffle hands
        // decoded `ColumnBatch`es to reducers when every chunk is binary.
        #[derive(Debug)]
        struct BatchOnlyReducer;
        impl Reducer for BatchOnlyReducer {
            fn output_schema(&self, _: &[Schema]) -> Result<Schema> {
                Ok(Schema::new(vec![Field::new("N", ColumnType::Long)]))
            }
            fn reduce(&self, _: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
                let n: usize = inputs.iter().map(Vec::len).sum();
                Ok(vec![row![n as i64]])
            }
            fn reduce_shuffled(
                &self,
                ctx: &ReducerContext,
                inputs: &[ReduceInput],
            ) -> Result<Vec<Row>> {
                assert!(
                    inputs
                        .iter()
                        .all(|i| matches!(i, ReduceInput::Batch(_)) || i.is_empty()),
                    "well-typed shuffle data must arrive columnar"
                );
                let rows: Vec<Vec<Row>> = inputs.iter().map(ReduceInput::to_rows).collect();
                self.reduce(ctx, &rows)
            }
        }
        let dfs = dfs_with_input(90);
        let stage = Stage::new(
            "batch",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            3,
            Arc::new(BatchOnlyReducer) as ReducerRef,
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        let total: i64 = dfs
            .get("out")
            .unwrap()
            .scan()
            .iter()
            .map(|r| r.get(0).as_long().unwrap())
            .sum();
        assert_eq!(total, 90);
    }

    fn tempdir() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "timr-cluster-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn run_job_chains_stages() {
        let dfs = dfs_with_input(20);
        let id: ReducerRef = Arc::new(IdentityReducer);
        let stages = vec![
            Stage::new(
                "s1",
                vec!["in".into()],
                "mid",
                Partitioner::KeyHash {
                    columns: vec!["UserId".into()],
                },
                4,
                id.clone(),
            )
            .unwrap(),
            Stage::new(
                "s2",
                vec!["mid".into()],
                "final",
                Partitioner::Single,
                1,
                id,
            )
            .unwrap(),
        ];
        let stats = Cluster::new().run_job(&dfs, &stages).unwrap();
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(dfs.get("final").unwrap().len(), 20);
        assert!(stats.total_shuffle_bytes() > 0);
    }

    /// Drops every row whose key hashes odd — a pure per-extent fragment,
    /// so restarts and shuffle rebuilds must reproduce it exactly.
    #[derive(Debug)]
    struct DropOddMapper;

    impl Mapper for DropOddMapper {
        fn output_schema(&self, _input: usize, schema: &Schema) -> Result<Schema> {
            Ok(schema.clone())
        }

        fn map(&self, _ctx: &MapperContext, rows: &[Row]) -> Result<Option<Vec<Row>>> {
            Ok(Some(
                rows.iter()
                    .filter(|r| r.get(0).as_long().unwrap() % 2 == 0)
                    .cloned()
                    .collect(),
            ))
        }
    }

    #[test]
    fn mapper_runs_before_shuffle_and_records_savings() {
        let dfs = Dfs::new();
        let rows = input_rows(200);
        dfs.put(
            "in",
            Dataset::partitioned(schema(), rows.chunks(50).map(|c| c.to_vec()).collect()),
        )
        .unwrap();
        let stage = count_stage(4).with_mapper(Arc::new(DropOddMapper));
        let stats = Cluster::new().run_stage(&dfs, &stage).unwrap();
        assert_eq!(stats.map_rows_in, 200);
        assert_eq!(stats.map_rows_out, 100);
        assert!(stats.shuffle_bytes_saved > 0);
        let total: i64 = dfs
            .get("out")
            .unwrap()
            .scan()
            .iter()
            .map(|r| r.get(1).as_long().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn mapper_output_survives_shuffle_corruption_and_retries() {
        let clean = {
            let dfs = dfs_with_input(300);
            let stage = count_stage(4).with_mapper(Arc::new(DropOddMapper));
            Cluster::new().run_stage(&dfs, &stage).unwrap();
            dfs.get("out").unwrap().partitions.as_ref().clone()
        };
        let chaos = ChaosPlan::none()
            .corrupt("count", TaskPhase::Shuffle, 1)
            .kill("count", TaskPhase::Map, 0)
            .kill("count", TaskPhase::Reduce, 2);
        let dfs = dfs_with_input(300);
        let stage = count_stage(4).with_mapper(Arc::new(DropOddMapper));
        let cluster = Cluster::with_config(config(4, chaos, 3));
        let stats = cluster.run_stage(&dfs, &stage).unwrap();
        assert!(stats.task_retries > 0);
        assert_eq!(
            dfs.get("out").unwrap().partitions.as_ref().clone(),
            clean,
            "mapper fragments must be byte-deterministic under chaos"
        );
    }
}
