//! Stable 64-bit hashing for partition assignment.
//!
//! Map-reduce partition placement must be a pure function of the key so that
//! (a) re-executing a failed reducer sees exactly the same input partition,
//! and (b) two runs of the same job produce identical stage boundaries. The
//! standard library's `DefaultHasher` is randomly seeded per process, so we
//! use FxHash with a fixed seed discipline instead (fast, deterministic,
//! HashDoS is irrelevant for a simulator).
//!
//! [`bucket_of`] implements the paper's trick of partitioning by
//! `hash(key) % #machines` instead of by raw key, so a reducer (and its
//! embedded DSMS instance) is instantiated once per *machine*, not once per
//! key value (paper §III-C.3).

use crate::row::Row;
use crate::value::Value;
use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

/// Deterministic 64-bit hash of any hashable value.
pub fn stable_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Deterministic hash of the key formed by the cells of `row` at `indices`.
pub fn key_hash(row: &Row, indices: &[usize]) -> u64 {
    let mut hasher = FxHasher::default();
    for &i in indices {
        row.get(i).hash(&mut hasher);
    }
    hasher.finish()
}

/// Deterministic hash of a list of values (an extracted key).
pub fn values_hash(values: &[Value]) -> u64 {
    let mut hasher = FxHasher::default();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

/// Map a key hash onto one of `buckets` partitions (paper §III-C.3).
pub fn bucket_of(hash: u64, buckets: usize) -> usize {
    assert!(buckets > 0, "cannot bucket into zero partitions");
    (hash % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn hashing_is_deterministic_across_calls() {
        let r = row![5i64, "user-17", 2i32];
        assert_eq!(key_hash(&r, &[1]), key_hash(&r, &[1]));
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
    }

    #[test]
    fn key_hash_depends_only_on_key_columns() {
        let a = row![5i64, "user-17", 2i32];
        let b = row![99i64, "user-17", 7i32];
        assert_eq!(key_hash(&a, &[1]), key_hash(&b, &[1]));
        assert_ne!(key_hash(&a, &[0]), key_hash(&b, &[0]));
    }

    #[test]
    fn buckets_cover_range_and_spread() {
        let buckets = 8;
        let mut seen = vec![false; buckets];
        for i in 0..1000u64 {
            let b = bucket_of(stable_hash(&format!("user-{i}")), buckets);
            assert!(b < buckets);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn values_hash_matches_key_hash() {
        let r = row![5i64, "u", 2i32];
        let key = vec![r.get(1).clone(), r.get(2).clone()];
        assert_eq!(key_hash(&r, &[1, 2]), values_hash(&key));
    }
}
