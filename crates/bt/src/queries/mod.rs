//! The BT temporal queries (paper §IV-B, Figs 11–13).
//!
//! Each constructor returns a [`BtQuery`]: a validated CQ plan plus the
//! exchange annotation the paper describes for it. The whole BT solution
//! is this handful of declarative queries — the Fig 14 "development
//! effort" comparison counts them against the hand-written reducer
//! pipeline in [`crate::baselines::custom`].

pub mod advertisers;
pub mod bot_elim;
pub mod feature_selection;
pub mod model;
pub mod train_data;

use relation::schema::{ColumnType, Field};
use relation::Schema;
use temporal::plan::LogicalPlan;
use timr::Annotation;

/// Stream ids of the unified schema (paper Fig 9).
pub mod stream_id {
    /// An ad impression.
    pub const IMPRESSION: i32 = 0;
    /// An ad click.
    pub const CLICK: i32 = 1;
    /// A search or page view.
    pub const KEYWORD: i32 = 2;
}

/// A named BT query with its parallel annotation.
#[derive(Debug, Clone)]
pub struct BtQuery {
    /// Query name.
    pub name: &'static str,
    /// The CQ plan.
    pub plan: LogicalPlan,
    /// The exchange placement used when running on TiMR.
    pub annotation: Annotation,
}

impl BtQuery {
    /// Operator count — the "query size" component of the Fig 14
    /// development-effort comparison.
    pub fn operator_count(&self) -> usize {
        self.plan.operator_count()
    }
}

/// Payload schema of the unified log (paper Fig 9, minus the framing
/// `Time` column TiMR manages).
pub fn log_payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}

/// Payload schema of labelled click/non-click events.
pub fn labels_payload() -> Schema {
    Schema::new(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("AdId", ColumnType::Str),
        Field::new("Label", ColumnType::Int),
    ])
}

/// Payload schema of training rows: one row per (example, profile
/// keyword).
pub fn train_rows_payload() -> Schema {
    Schema::new(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("AdId", ColumnType::Str),
        Field::new("Label", ColumnType::Int),
        Field::new("Keyword", ColumnType::Str),
        Field::new("Cnt", ColumnType::Long),
    ])
}

/// Payload schema of keyword z-scores.
pub fn scores_payload() -> Schema {
    Schema::new(vec![
        Field::new("AdId", ColumnType::Str),
        Field::new("Keyword", ColumnType::Str),
        Field::new("ClicksWith", ColumnType::Long),
        Field::new("ExamplesWith", ColumnType::Long),
        Field::new("TotalClicks", ColumnType::Long),
        Field::new("TotalExamples", ColumnType::Long),
        Field::new("Z", ColumnType::Double),
    ])
}

/// All BT queries under default parameters — the paper's "20 temporal
/// queries" inventory (our decomposition differs slightly; the count and
/// total operator volume are reported by the Fig 14 experiment).
pub fn all_queries(params: &crate::BtParams) -> Vec<BtQuery> {
    vec![
        bot_elim::query(params),
        train_data::labels_query(params),
        train_data::train_query(params),
        feature_selection::query(params),
        model::model_query(params, crate::lr::LrConfig::default()),
        model::scoring_query(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_validate() {
        let params = crate::BtParams::default();
        let queries = all_queries(&params);
        assert_eq!(queries.len(), 6);
        for q in &queries {
            q.annotation
                .validate(&q.plan)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert!(q.operator_count() > 0);
        }
    }

    #[test]
    fn schemas_are_consistent() {
        assert_eq!(log_payload().len(), 3);
        assert!(labels_payload().contains("Label"));
        assert!(train_rows_payload().contains("Keyword"));
        assert!(scores_payload().contains("Z"));
    }
}
