//! Physical implementations of the temporal operators.
//!
//! Each operator is a pure function from input [`crate::EventStream`]s to an
//! output stream; semantics are defined on the denoted temporal relation, so
//! results never depend on the physical order of input events. The batch
//! executor ([`crate::exec`]) wires these together following a
//! [`crate::plan::LogicalPlan`].
//!
//! The default implementations here are the *compiled* forms: expressions
//! are index-resolved once per invocation ([`crate::compiled`]), join and
//! grouping keys hash in place ([`crate::key`]), and single-consumer inputs
//! are consumed and mutated in place rather than cloned. The PR 1
//! interpreted forms are preserved verbatim in [`interpreted`] as the
//! benchmark baseline and property-test reference; both produce
//! byte-identical outputs.

mod aggregate;
mod alter_lifetime;
mod anti_semi_join;
mod filter;
mod fused;
mod group_apply;
mod hop_udo;
pub mod interpreted;
mod project;
mod spread_grid;
mod temporal_join;
mod union;

pub use aggregate::{aggregate, aggregate_batch};
pub use alter_lifetime::{alter_lifetime, alter_lifetime_batch};
pub use anti_semi_join::anti_semi_join;
pub use filter::{filter, filter_batch};
pub use fused::{fused_fragment_batch, fused_fragment_rows};
pub use group_apply::{group_apply, group_apply_batch};
pub use hop_udo::hop_udo;
pub use project::{project, project_batch};
pub use spread_grid::spread_grid;
pub use temporal_join::temporal_join;
pub use union::union;
