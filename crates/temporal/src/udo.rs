//! User-defined windowed operators (UDOs).
//!
//! DSMSs let users supply code that runs over the contents of a window
//! (paper §II-A.2, "User-Defined Operators"). TiMR's BT solution uses one to
//! run logistic-regression training over a hopping window of training
//! examples (paper §IV-B.4).
//!
//! A [`WindowUdo`] is invoked once per hop: it receives every event whose
//! timestamp falls in `(window_end - width, window_end]` and returns output
//! rows that the engine stamps with lifetime `[window_end, window_end + hop)`
//! — i.e. each result is valid until the next recomputation, which is
//! exactly how the paper lodges periodically-retrained model weights into a
//! join synopsis for scoring.

use crate::error::Result;
use crate::event::Event;
use crate::time::Time;
use relation::{Row, Schema};
use std::fmt;
use std::sync::Arc;

/// User code applied to each hopping window.
pub trait WindowUdo: Send + Sync + fmt::Debug {
    /// Stable name, used in plan display and plan comparison.
    fn name(&self) -> &str;

    /// Output schema given the input schema.
    fn output_schema(&self, input: &Schema) -> Result<Schema>;

    /// Compute output rows for the window ending at `window_end`
    /// (events are those with `LE` in `(window_end - width, window_end]`,
    /// in ascending `LE` order).
    fn apply(&self, window_end: Time, input_schema: &Schema, events: &[Event]) -> Result<Vec<Row>>;
}

/// Shared handle to a UDO instance stored inside plans.
pub type UdoRef = Arc<dyn WindowUdo>;

/// A trivial UDO that emits one row per window containing the window-end
/// time and the number of events. Useful in tests and as a template.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowCountUdo;

impl WindowUdo for WindowCountUdo {
    fn name(&self) -> &str {
        "window_count"
    }

    fn output_schema(&self, _input: &Schema) -> Result<Schema> {
        use relation::schema::{ColumnType, Field};
        Ok(Schema::new(vec![
            Field::new("WindowEnd", ColumnType::Long),
            Field::new("Events", ColumnType::Long),
        ]))
    }

    fn apply(
        &self,
        window_end: Time,
        _input_schema: &Schema,
        events: &[Event],
    ) -> Result<Vec<Row>> {
        Ok(vec![relation::row![window_end, events.len() as i64]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;

    #[test]
    fn window_count_udo_counts() {
        let schema = Schema::new(vec![relation::schema::Field::new(
            "X",
            relation::schema::ColumnType::Long,
        )]);
        let events = vec![Event::point(1, row![1i64]), Event::point(2, row![2i64])];
        let out = WindowCountUdo.apply(10, &schema, &events).unwrap();
        assert_eq!(out, vec![row![10i64, 2i64]]);
        assert_eq!(
            WindowCountUdo.output_schema(&schema).unwrap().names(),
            vec!["WindowEnd", "Events"]
        );
    }
}
