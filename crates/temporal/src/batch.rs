//! Column-major event storage: lifetimes as two dense `Vec<i64>` plus a
//! [`ColumnBatch`] payload.
//!
//! An [`EventBatch`] is the columnar twin of [`EventStream`]: the same bag
//! of events, transposed. Conversion preserves event order exactly, so a
//! batch that round-trips through [`EventBatch::into_stream`] is
//! byte-identical to the stream it came from — the columnar executor leans
//! on this to keep the paper's repeatability guarantee (§III-C.1) while
//! running vectorized kernels.
//!
//! [`EventBatch::from_stream`] returns `None` when the payload rows do not
//! inhabit the declared schema types (row storage tolerates ill-typed
//! cells; dense typed vectors cannot). Callers treat `None` as "stay on the
//! row path", never as an error.

use crate::event::Event;
use crate::stream::EventStream;
use crate::time::Lifetime;
use relation::{ColumnBatch, Row, Schema};

/// A fixed-length batch of events stored column-major: validity-interval
/// starts (`vt`), ends (`ve`), and the payload columns.
#[derive(Debug, Clone)]
pub struct EventBatch {
    vt: Vec<i64>,
    ve: Vec<i64>,
    payload: ColumnBatch,
}

impl EventBatch {
    /// Assemble from parts; the lifetime vectors must match the payload
    /// row count, and every lifetime must be non-empty (`vt[i] < ve[i]`).
    pub fn new(vt: Vec<i64>, ve: Vec<i64>, payload: ColumnBatch) -> EventBatch {
        assert_eq!(vt.len(), payload.len(), "vt length mismatch");
        assert_eq!(ve.len(), payload.len(), "ve length mismatch");
        debug_assert!(vt.iter().zip(&ve).all(|(s, e)| s < e), "empty lifetime");
        EventBatch { vt, ve, payload }
    }

    /// Transpose a stream into a batch, or `None` when any payload cell
    /// does not inhabit its declared column type (caller stays row-major).
    pub fn from_stream(stream: &EventStream) -> Option<EventBatch> {
        Self::from_events(stream.schema().clone(), stream.events())
    }

    /// [`Self::from_stream`] over a borrowed event slice.
    pub fn from_events(schema: Schema, events: &[Event]) -> Option<EventBatch> {
        let payload = ColumnBatch::from_value_rows(
            schema,
            events.len(),
            events.iter().map(|e| e.payload.values()),
        )
        .ok()?;
        let vt = events.iter().map(|e| e.lifetime.start).collect();
        let ve = events.iter().map(|e| e.lifetime.end).collect();
        Some(EventBatch { vt, ve, payload })
    }

    /// Transpose back into an [`EventStream`], preserving event order.
    pub fn into_stream(self) -> EventStream {
        let schema = self.payload.schema().clone();
        let events: Vec<Event> = self
            .vt
            .iter()
            .zip(&self.ve)
            .enumerate()
            .map(|(i, (&s, &e))| Event::new(Lifetime::new(s, e), self.payload.row(i)))
            .collect();
        EventStream::new(schema, events)
    }

    /// Payload schema.
    pub fn schema(&self) -> &Schema {
        self.payload.schema()
    }

    /// Payload columns.
    pub fn payload(&self) -> &ColumnBatch {
        &self.payload
    }

    /// Lifetime starts.
    pub fn vt(&self) -> &[i64] {
        &self.vt
    }

    /// Lifetime ends.
    pub fn ve(&self) -> &[i64] {
        &self.ve
    }

    /// Mutable access to both lifetime vectors (for in-place lifetime
    /// rewrites; callers must keep `vt[i] < ve[i]`).
    pub fn times_mut(&mut self) -> (&mut Vec<i64>, &mut Vec<i64>) {
        (&mut self.vt, &mut self.ve)
    }

    /// Decompose into lifetime vectors and payload, consuming the batch —
    /// owning consumers (the fused projection, encoders) move the storage
    /// instead of copying it.
    pub fn into_parts(self) -> (Vec<i64>, Vec<i64>, ColumnBatch) {
        (self.vt, self.ve, self.payload)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the batch has no events.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Gather the payload row of event `i`.
    pub fn payload_row(&self, i: usize) -> Row {
        self.payload.row(i)
    }

    /// Gather the payload row of event `i` into a caller-owned scratch row,
    /// reusing its allocation — the row-fallback loops' no-alloc twin of
    /// [`Self::payload_row`].
    pub fn payload_row_into(&self, i: usize, row: &mut Row) {
        self.payload.row_into(i, row);
    }

    /// Keep only the events where `keep` is true. The survivor index
    /// vector is computed once and shared by the lifetime vectors and
    /// every payload column (see [`relation::compact_indices`]).
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len(), "retain mask length mismatch");
        self.compact(&relation::compact_indices(keep));
    }

    /// Keep only the events at `idx` (strictly increasing), in place.
    pub fn compact(&mut self, idx: &[u32]) {
        for (w, &i) in idx.iter().enumerate() {
            self.vt[w] = self.vt[i as usize];
            self.ve[w] = self.ve[i as usize];
        }
        self.vt.truncate(idx.len());
        self.ve.truncate(idx.len());
        self.payload.compact(idx);
    }

    /// Gather the events at `idx` into a new batch (indices may repeat and
    /// appear in any order).
    pub fn gather(&self, idx: &[u32]) -> EventBatch {
        EventBatch {
            vt: idx.iter().map(|&i| self.vt[i as usize]).collect(),
            ve: idx.iter().map(|&i| self.ve[i as usize]).collect(),
            payload: self.payload.gather(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use relation::schema::{ColumnType, Field};
    use relation::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("U", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ])
    }

    fn stream() -> EventStream {
        EventStream::new(
            schema(),
            vec![
                Event::new(Lifetime::new(0, 10), row!["a", 1i64]),
                Event::new(
                    Lifetime::new(5, 6),
                    Row::new(vec![Value::Null, Value::Null]),
                ),
                Event::new(Lifetime::new(-3, 40), row!["b", -9i64]),
            ],
        )
    }

    #[test]
    fn stream_round_trip_is_byte_identical() {
        let s = stream();
        let batch = EventBatch::from_stream(&s).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.into_stream(), s);
    }

    #[test]
    fn empty_stream_round_trips() {
        let s = EventStream::empty(schema());
        let batch = EventBatch::from_stream(&s).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.into_stream(), s);
    }

    #[test]
    fn ill_typed_payload_falls_back() {
        // Row storage happily holds an Int where the schema says Long; the
        // typed batch cannot, and must signal fallback rather than panic.
        let s = EventStream::new(schema(), vec![Event::point(0, row!["a", 7i32])]);
        assert!(EventBatch::from_stream(&s).is_none());
    }

    #[test]
    fn retain_keeps_lifetimes_aligned() {
        let mut batch = EventBatch::from_stream(&stream()).unwrap();
        batch.retain(&[true, false, true]);
        assert_eq!(batch.vt(), &[0, -3]);
        assert_eq!(batch.ve(), &[10, 40]);
        let out = batch.into_stream();
        assert_eq!(out.events()[1].payload, row!["b", -9i64]);
    }
}
