//! Error type for the BT application.

use std::fmt;

/// Errors raised by the BT pipeline.
#[derive(Debug)]
pub enum BtError {
    /// Propagated TiMR error.
    Timr(timr::TimrError),
    /// Propagated map-reduce error.
    MapReduce(mapreduce::MrError),
    /// Propagated DSMS error.
    Temporal(temporal::TemporalError),
    /// Pipeline misconfiguration or unexpected data.
    Pipeline(String),
}

impl fmt::Display for BtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtError::Timr(e) => write!(f, "{e}"),
            BtError::MapReduce(e) => write!(f, "{e}"),
            BtError::Temporal(e) => write!(f, "{e}"),
            BtError::Pipeline(m) => write!(f, "pipeline error: {m}"),
        }
    }
}

impl std::error::Error for BtError {}

impl From<timr::TimrError> for BtError {
    fn from(e: timr::TimrError) -> Self {
        BtError::Timr(e)
    }
}
impl From<mapreduce::MrError> for BtError {
    fn from(e: mapreduce::MrError) -> Self {
        BtError::MapReduce(e)
    }
}
impl From<temporal::TemporalError> for BtError {
    fn from(e: temporal::TemporalError) -> Self {
        BtError::Temporal(e)
    }
}
impl From<relation::RelationError> for BtError {
    fn from(e: relation::RelationError) -> Self {
        BtError::Temporal(temporal::TemporalError::Relation(e))
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, BtError>;
