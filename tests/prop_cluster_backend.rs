//! Multi-process backend equivalence tests: the process backend — real
//! worker OS processes exchanging binary extent images over Unix-domain
//! sockets — must produce datasets byte-identical to the in-process
//! thread pool, at any worker count, in every DSMS execution mode, and
//! under real process-kill chaos (SIGKILL mid-task in every phase),
//! socket-level corruption, injected stragglers with speculative
//! re-execution, and preemptive attempt timeouts.

#![cfg(unix)]

use proptest::prelude::*;
use std::time::Duration;
use timr_suite::mapreduce::{
    BackendKind, ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, FaultTotals, RetryPolicy,
    SpeculationPolicy, TaskPhase,
};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema};
use timr_suite::temporal::exec::ExecMode;
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::Query;
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

const MODES: [ExecMode; 4] = [
    ExecMode::Interpreted,
    ExecMode::Compiled,
    ExecMode::Columnar,
    ExecMode::Fused,
];

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}

fn click_count_job(mode: ExecMode) -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, timr_suite::temporal::plan::Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
    TimrJob::new("pb", plan)
        .with_annotation(ann)
        .with_machines(4)
        .with_exec_mode(mode)
}

/// The compiled stage name — lets chaos target exact task coordinates
/// instead of guessing node ids.
fn stage_name(mode: ExecMode) -> String {
    click_count_job(mode).compile().unwrap().stages[0]
        .name
        .clone()
}

/// Store the log as several extents so the map phase has multiple tasks.
fn dfs_with(rows: &[Row], extents: usize) -> Dfs {
    let chunk = rows.len().div_ceil(extents).max(1);
    let parts: Vec<Vec<Row>> = rows.chunks(chunk).map(|c| c.to_vec()).collect();
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::partitioned(EventEncoding::Point.dataset_schema(&payload()), parts),
    )
    .unwrap();
    dfs
}

fn deterministic_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            row![
                i * 7 % 500,
                (1 + i % 2) as i32,
                format!("u{}", i % 11),
                format!("ad{}", i % 7)
            ]
        })
        .collect()
}

fn run_job(rows: &[Row], mode: ExecMode, config: ClusterConfig) -> (Vec<Vec<Row>>, FaultTotals) {
    let dfs = dfs_with(rows, 3);
    let cluster = Cluster::with_config(config);
    let out = click_count_job(mode).run(&dfs, &cluster).unwrap();
    (
        dfs.get(&out.dataset).unwrap().partitions.as_ref().clone(),
        out.stats.fault_totals(),
    )
}

fn process_config(workers: usize, chaos: ChaosPlan, retry: RetryPolicy) -> ClusterConfig {
    ClusterConfig {
        backend: BackendKind::Processes { workers },
        chaos,
        retry,
        ..ClusterConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The process backend is byte-identical to the thread pool at 1, 2,
    /// and 4 workers in all four DSMS execution modes, clean and under a
    /// seeded chaos schedule that includes real process kills.
    #[test]
    fn process_backend_matches_threads(
        n in 40i64..120,
        seed in 0u64..1_000_000,
    ) {
        let rows = deterministic_rows(n);
        let chaos = ChaosPlan::seeded(seed)
            .with_transients(0.10)
            .with_corruption(0.08)
            .with_process_kills(0.10)
            .with_fault_cap(2);
        let retry = RetryPolicy::no_backoff(4);
        for mode in MODES {
            let (reference, totals) = run_job(
                &rows,
                mode,
                ClusterConfig {
                    threads: 4,
                    chaos: ChaosPlan::none(),
                    retry,
                    ..ClusterConfig::default()
                },
            );
            prop_assert_eq!(totals.task_retries, 0);
            for workers in [1usize, 2, 4] {
                let (clean, _) = run_job(
                    &rows,
                    mode,
                    process_config(workers, ChaosPlan::none(), retry),
                );
                prop_assert_eq!(
                    &clean, &reference,
                    "clean process run diverged (mode {:?}, workers {})", mode, workers
                );
                let (chaotic, _) = run_job(
                    &rows,
                    mode,
                    process_config(workers, chaos.clone(), retry),
                );
                prop_assert_eq!(
                    &chaotic, &reference,
                    "chaos visible in output (mode {:?}, workers {}, seed {})",
                    mode, workers, seed
                );
            }
        }
    }
}

/// A real SIGKILL in every phase — map, shuffle, and reduce — is invisible
/// in the output: survivors absorb the dead worker's partitions (and the
/// scheduler respawns only when nobody is left).
#[test]
fn sigkill_in_every_phase_is_byte_identical() {
    let rows = deterministic_rows(150);
    let retry = RetryPolicy::no_backoff(3);
    for mode in MODES {
        let stage = stage_name(mode);
        let (reference, _) = run_job(&rows, mode, process_config(2, ChaosPlan::none(), retry));
        let chaos = ChaosPlan::none()
            .kill_process(&stage, TaskPhase::Map, 0)
            .kill_process(&stage, TaskPhase::Shuffle, 1)
            .kill_process(&stage, TaskPhase::Reduce, 2);
        let (killed, totals) = run_job(&rows, mode, process_config(2, chaos, retry));
        assert_eq!(killed, reference, "SIGKILL visible in output ({mode:?})");
        assert!(
            totals.workers_lost >= 3,
            "expected three real worker deaths, saw {} ({mode:?})",
            totals.workers_lost
        );
        assert!(totals.task_retries >= 3);
    }
}

/// An injected straggler triggers speculative re-execution; the duplicate
/// (which skips the injected sleep) wins, and the race never changes
/// output bytes.
#[test]
fn straggler_speculation_is_deterministic() {
    let rows = deterministic_rows(120);
    let retry = RetryPolicy::no_backoff(3);
    let stage = stage_name(ExecMode::Compiled);
    let (reference, _) = run_job(
        &rows,
        ExecMode::Compiled,
        process_config(3, ChaosPlan::none(), retry),
    );
    let chaos =
        ChaosPlan::none().straggle(&stage, TaskPhase::Reduce, 3, Duration::from_millis(400));
    let config = ClusterConfig {
        speculation: SpeculationPolicy {
            enabled: true,
            latency_factor: 2.0,
            min_lag: Duration::from_millis(20),
            min_completed: 2,
        },
        ..process_config(3, chaos, retry)
    };
    let (speculated, totals) = run_job(&rows, ExecMode::Compiled, config);
    assert_eq!(speculated, reference, "speculation changed output bytes");
    assert!(
        totals.speculative_launched >= 1,
        "no speculative duplicate launched for a 400ms straggler"
    );
    assert!(
        totals.speculative_wins >= 1,
        "the duplicate should beat a 400ms straggler"
    );
}

/// A result frame corrupted on the wire (byte flipped after the checksum
/// was computed) is caught by frame verification and re-executed.
#[test]
fn wire_corruption_is_caught_and_retried() {
    let rows = deterministic_rows(130);
    let retry = RetryPolicy::no_backoff(3);
    let stage = stage_name(ExecMode::Columnar);
    let (reference, _) = run_job(
        &rows,
        ExecMode::Columnar,
        process_config(2, ChaosPlan::none(), retry),
    );
    let chaos = ChaosPlan::none()
        .corrupt_wire(&stage, TaskPhase::Map, 0)
        .corrupt_wire(&stage, TaskPhase::Reduce, 1)
        .delay_wire(&stage, TaskPhase::Reduce, 0, Duration::from_millis(30));
    let (corrupted, totals) = run_job(&rows, ExecMode::Columnar, process_config(2, chaos, retry));
    assert_eq!(corrupted, reference, "wire corruption visible in output");
    assert!(
        totals.corruption_detected >= 2,
        "both damaged frames must be detected, saw {}",
        totals.corruption_detected
    );
    assert!(totals.task_retries >= 2);
}

/// `RetryPolicy::attempt_timeout` on the process backend is preemptive: a
/// copy running past the deadline is SIGKILLed, charged as `TimedOut`,
/// and re-executed (the injected straggle applies to attempt 0 only, so
/// the retry completes).
#[test]
fn attempt_timeout_preempts_stragglers() {
    let rows = deterministic_rows(110);
    let stage = stage_name(ExecMode::Compiled);
    let retry = RetryPolicy::no_backoff(3).with_attempt_timeout(Duration::from_millis(80));
    let (reference, _) = run_job(
        &rows,
        ExecMode::Compiled,
        process_config(2, ChaosPlan::none(), retry),
    );
    let chaos =
        ChaosPlan::none().straggle(&stage, TaskPhase::Reduce, 0, Duration::from_millis(500));
    let config = ClusterConfig {
        speculation: SpeculationPolicy {
            enabled: false,
            ..SpeculationPolicy::default()
        },
        ..process_config(2, chaos, retry)
    };
    let (timed, totals) = run_job(&rows, ExecMode::Compiled, config);
    assert_eq!(timed, reference, "timeout recovery changed output bytes");
    assert!(
        totals.tasks_timed_out >= 1,
        "a 500ms straggler must trip an 80ms attempt timeout"
    );
    assert!(totals.workers_lost >= 1, "the preemption is a real SIGKILL");
}

/// Budgeted shuffles spill through the process backend too: chunks ship
/// to workers as extent images read back from the spill files, kills
/// mid-run leave no stray spill files behind, and teardown reaps every
/// worker (no zombie children linger).
#[test]
fn spills_and_workers_are_cleaned_up() {
    let spill_dir = std::env::temp_dir().join(format!("timr-backend-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).unwrap();
    let rows = deterministic_rows(160);
    let stage = stage_name(ExecMode::Compiled);
    let retry = RetryPolicy::no_backoff(3);
    let (reference, _) = run_job(
        &rows,
        ExecMode::Compiled,
        process_config(2, ChaosPlan::none(), retry),
    );
    let chaos = ChaosPlan::none()
        .kill_process(&stage, TaskPhase::Reduce, 0)
        .corrupt(&stage, TaskPhase::Shuffle, 1);
    let config = ClusterConfig {
        memory_budget_bytes: Some(2 << 10),
        spill_dir: Some(spill_dir.clone()),
        ..process_config(2, chaos, retry)
    };
    let (spilled, totals) = run_job(&rows, ExecMode::Compiled, config);
    assert_eq!(spilled, reference, "spilled chaos run diverged");
    assert!(totals.workers_lost >= 1);
    let leftovers: Vec<_> = std::fs::read_dir(&spill_dir).unwrap().collect();
    assert!(leftovers.is_empty(), "spill files leaked: {leftovers:?}");
    std::fs::remove_dir_all(&spill_dir).ok();
    // No zombie children: every worker the backend forked has been
    // reaped. Poll briefly — concurrently running tests in this binary
    // fork workers of their own.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let zombies = zombie_children();
        if zombies.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "unreaped worker processes remain: {zombies:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Child processes of this test binary in state Z (dead but not reaped).
fn zombie_children() -> Vec<i32> {
    let me = std::process::id() as i32;
    let mut zombies = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return zombies;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|s| s.parse::<i32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Fields after the parenthesized command: state, ppid, ...
        let Some(rest) = stat.rsplit(')').next() else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let state = fields.next().unwrap_or("");
        let ppid: i32 = fields.next().and_then(|p| p.parse().ok()).unwrap_or(-1);
        if ppid == me && state == "Z" {
            zombies.push(pid);
        }
    }
    zombies
}
