//! The event generator.
//!
//! Each user is simulated independently with an RNG seeded from
//! `(config.seed, user index)`, so logs are deterministic and
//! order-independent. A user's timeline interleaves searches (Poisson
//! arrivals), trend-burst searches, and ad impressions; every impression's
//! click decision is made by the *ground-truth logistic model* over the
//! planted keywords actually present in that user's preceding six hours of
//! searches — the same quantity the BT pipeline later estimates.

use crate::config::{GenConfig, HOUR};
use crate::keywords::Vocabulary;
use crate::truth::GroundTruth;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relation::{row, Row};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// Log record kind (the `StreamId` column of paper Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamId {
    /// An ad was shown (`StreamId = 0`).
    Impression = 0,
    /// An ad was clicked (`StreamId = 1`).
    Click = 1,
    /// A search or page view (`StreamId = 2`).
    Keyword = 2,
}

/// One generated log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Timestamp (ticks).
    pub time: i64,
    /// Record kind.
    pub stream: StreamId,
    /// User id.
    pub user: String,
    /// Keyword (for `Keyword`) or ad class (for `Impression`/`Click`).
    pub kw_ad: String,
}

/// A generated log plus its planted ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedLog {
    /// Events sorted by `(time, user, stream)`.
    pub events: Vec<LogEvent>,
    /// What was planted.
    pub truth: GroundTruth,
}

impl GeneratedLog {
    /// Encode as rows of the unified dataset schema
    /// (`Time, StreamId, UserId, KwAdId`).
    pub fn rows(&self) -> Vec<Row> {
        self.events
            .iter()
            .map(|e| row![e.time, e.stream as i32, e.user.as_str(), e.kw_ad.as_str()])
            .collect()
    }

    /// `(bot user count, total users, bot clicks+searches, total
    /// clicks+searches)` — the §IV-B.1 bot statistic.
    pub fn bot_activity(&self) -> (usize, usize, u64, u64) {
        let mut users: FxHashMap<&str, bool> = FxHashMap::default();
        let mut bot_activity = 0u64;
        let mut total_activity = 0u64;
        for e in &self.events {
            let is_bot = self.truth.bots.contains(&e.user);
            users.insert(&e.user, is_bot);
            if matches!(e.stream, StreamId::Click | StreamId::Keyword) {
                total_activity += 1;
                if is_bot {
                    bot_activity += 1;
                }
            }
        }
        let bots = users.values().filter(|&&b| b).count();
        (bots, users.len(), bot_activity, total_activity)
    }

    /// Overall click-through rate (clicks / impressions).
    pub fn overall_ctr(&self) -> f64 {
        let clicks = self
            .events
            .iter()
            .filter(|e| e.stream == StreamId::Click)
            .count() as f64;
        let imps = self
            .events
            .iter()
            .filter(|e| e.stream == StreamId::Impression)
            .count() as f64;
        if imps == 0.0 {
            0.0
        } else {
            clicks / imps
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Exponential inter-arrival sample for a Poisson process with `rate`
/// events per tick.
fn next_gap<R: Rng>(rng: &mut R, rate: f64) -> i64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((-u.ln() / rate).ceil() as i64).max(1)
}

/// Generate a log from `config`.
pub fn generate(config: &GenConfig) -> GeneratedLog {
    let planted: Vec<String> = {
        let mut v: Vec<String> = Vec::new();
        for ad in &config.ad_classes {
            for (k, _) in ad.positive.iter().chain(&ad.negative) {
                if !v.contains(k) {
                    v.push(k.clone());
                }
            }
        }
        v
    };
    let vocab = Vocabulary::new(planted, config.background_keywords, config.zipf_exponent);

    // Per-ad keyword weights for the ground-truth click model.
    let ad_weights: Vec<FxHashMap<&str, f64>> = config
        .ad_classes
        .iter()
        .map(|ad| {
            ad.positive
                .iter()
                .chain(&ad.negative)
                .map(|(k, w)| (k.as_str(), *w))
                .collect()
        })
        .collect();

    let mut truth = GroundTruth::default();
    for ad in &config.ad_classes {
        truth.positive_keywords.insert(
            ad.name.clone(),
            ad.positive.iter().map(|(k, _)| k.clone()).collect(),
        );
        truth.negative_keywords.insert(
            ad.name.clone(),
            ad.negative.iter().map(|(k, _)| k.clone()).collect(),
        );
    }

    let mut events: Vec<LogEvent> = Vec::new();
    let n_bots = ((config.users as f64) * config.bot_fraction).round() as usize;

    for uidx in 0..config.users {
        let user = format!("u{uidx}");
        let mut rng = SmallRng::seed_from_u64(
            config.seed ^ (uidx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let is_bot = uidx < n_bots;
        if is_bot {
            truth.bots.insert(user.clone());
        }
        let mult = if is_bot {
            config.bot_activity_multiplier
        } else {
            1.0
        };

        // Keyword pool this user draws planted searches from.
        let mut pool: Vec<&str> = Vec::new();
        for ad in &config.ad_classes {
            if rng.gen::<f64>() < config.affinity_fraction {
                pool.extend(ad.positive.iter().map(|(k, _)| k.as_str()));
            }
            if rng.gen::<f64>() < config.affinity_fraction {
                pool.extend(ad.negative.iter().map(|(k, _)| k.as_str()));
            }
        }

        // ---- searches ----
        // Two independent Poisson processes: a *background* process every
        // user has at the same rate (so background keywords carry no
        // population-level click signal and the z-test must reject them),
        // and an *additional* planted-keyword process for users with
        // ad-class affinities. Folding planted searches into the
        // background budget instead (a probability split) would make
        // affine users search each background keyword less often than
        // non-affine users — a confound that floods feature selection
        // with spuriously "negative" background keywords.
        let day = 24 * HOUR;
        let bg_rate = config.searches_per_user_per_day * mult / day as f64;
        let mut t = next_gap(&mut rng, bg_rate);
        let mut searches: Vec<(i64, String)> = Vec::new();
        while t < config.duration {
            let kw = if is_bot && rng.gen::<f64>() < 0.3 {
                // Bots also hammer random keywords across the whole
                // vocabulary, planted ones included.
                let all = &vocab.keywords;
                all[rng.gen_range(0..all.len())].clone()
            } else {
                vocab.sample_background(&mut rng).to_string()
            };
            searches.push((t, kw));
            t += next_gap(&mut rng, bg_rate);
        }
        if !pool.is_empty() && !is_bot {
            let planted_rate =
                config.searches_per_user_per_day * config.planted_search_weight * mult / day as f64;
            let mut t = next_gap(&mut rng, planted_rate);
            while t < config.duration {
                searches.push((t, pool[rng.gen_range(0..pool.len())].to_string()));
                t += next_gap(&mut rng, planted_rate);
            }
        }

        // ---- trend bursts ----
        for trend in &config.trends {
            if rng.gen::<f64>() < trend.user_fraction {
                let hours = ((trend.end - trend.start) as f64 / HOUR as f64).max(0.0);
                let expected = trend.searches_per_hour * hours;
                let count = poisson_like(&mut rng, expected);
                for _ in 0..count {
                    let at = rng.gen_range(trend.start..trend.end);
                    searches.push((at, trend.keyword.clone()));
                }
            }
        }
        searches.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

        // ---- impressions, with ground-truth click decisions ----
        let imp_rate = config.impressions_per_user_per_day * mult / day as f64;
        let mut impressions: Vec<i64> = Vec::new();
        let mut t = next_gap(&mut rng, imp_rate);
        while t < config.duration {
            impressions.push(t);
            t += next_gap(&mut rng, imp_rate);
        }

        let mut recent: VecDeque<(i64, &str)> = VecDeque::new();
        let mut search_idx = 0;
        for &imp_t in &impressions {
            // Advance the 6-hour profile window to this impression.
            while search_idx < searches.len() && searches[search_idx].0 <= imp_t {
                let (st, kw) = &searches[search_idx];
                recent.push_back((*st, kw.as_str()));
                search_idx += 1;
            }
            while recent
                .front()
                .is_some_and(|(st, _)| *st <= imp_t - 6 * HOUR)
            {
                recent.pop_front();
            }

            let ad_idx = rng.gen_range(0..config.ad_classes.len());
            let ad = &config.ad_classes[ad_idx];
            let clicked = if is_bot {
                rng.gen::<f64>() < 0.3
            } else {
                let mut x = ad.bias;
                let mut seen: Vec<&str> = Vec::new();
                for (_, kw) in &recent {
                    if !seen.contains(kw) {
                        if let Some(w) = ad_weights[ad_idx].get(kw) {
                            x += w;
                        }
                        seen.push(kw);
                    }
                }
                rng.gen::<f64>() < sigmoid(x)
            };

            events.push(LogEvent {
                time: imp_t,
                stream: StreamId::Impression,
                user: user.clone(),
                kw_ad: ad.name.clone(),
            });
            if clicked {
                let delay = rng.gen_range(5..config.max_click_delay.max(6));
                events.push(LogEvent {
                    time: imp_t + delay,
                    stream: StreamId::Click,
                    user: user.clone(),
                    kw_ad: ad.name.clone(),
                });
            }
        }

        for (st, kw) in searches {
            events.push(LogEvent {
                time: st,
                stream: StreamId::Keyword,
                user: user.clone(),
                kw_ad: kw,
            });
        }
    }

    events.sort_by(|a, b| {
        (a.time, &a.user, a.stream as i32, &a.kw_ad).cmp(&(
            b.time,
            &b.user,
            b.stream as i32,
            &b.kw_ad,
        ))
    });
    GeneratedLog { events, truth }
}

/// Cheap Poisson sampler (Knuth) adequate for small means.
fn poisson_like<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;

    fn small_log() -> GeneratedLog {
        generate(&GenConfig::small(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_log();
        let b = small_log();
        assert_eq!(a.events, b.events);
        assert_eq!(a.truth.bots, b.truth.bots);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::small(1));
        let b = generate(&GenConfig::small(2));
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_sorted_and_in_range() {
        let log = small_log();
        let cfg = GenConfig::small(42);
        assert!(!log.events.is_empty());
        for w in log.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in &log.events {
            assert!(e.time >= 0);
            // Clicks may trail the duration by up to the click delay.
            assert!(e.time < cfg.duration + cfg.max_click_delay);
        }
    }

    #[test]
    fn every_click_follows_an_impression() {
        let log = small_log();
        for c in log.events.iter().filter(|e| e.stream == StreamId::Click) {
            let has_imp = log.events.iter().any(|i| {
                i.stream == StreamId::Impression
                    && i.user == c.user
                    && i.kw_ad == c.kw_ad
                    && i.time < c.time
                    && c.time - i.time <= GenConfig::small(42).max_click_delay
            });
            assert!(has_imp, "orphan click {c:?}");
        }
    }

    #[test]
    fn bots_are_disproportionately_active() {
        // The §IV-B.1 shape: a tiny user fraction, an outsized activity
        // share.
        let mut cfg = GenConfig::small(7);
        cfg.users = 1000;
        let log = generate(&cfg);
        let (bots, users, bot_act, total_act) = log.bot_activity();
        assert!(bots >= 3, "want some bots, got {bots}");
        let user_share = bots as f64 / users as f64;
        let act_share = bot_act as f64 / total_act as f64;
        assert!(user_share < 0.02, "bot user share {user_share}");
        assert!(
            act_share > 5.0 * user_share,
            "bot activity share {act_share} vs user share {user_share}"
        );
    }

    #[test]
    fn overall_ctr_is_low_but_nonzero() {
        let log = small_log();
        let ctr = log.overall_ctr();
        assert!(ctr > 0.001, "ctr {ctr}");
        assert!(ctr < 0.25, "ctr {ctr}");
    }

    #[test]
    fn positive_keywords_correlate_with_clicks() {
        // Sanity-check the planted signal directly on the generator
        // output: CTR among impressions preceded (within 6h) by a planted
        // positive keyword must exceed the overall CTR.
        let mut cfg = GenConfig::small(11);
        cfg.users = 800;
        let log = generate(&cfg);
        let ad = "laptop";
        let positives = &log.truth.positive_keywords[ad];

        let mut with_kw = (0u64, 0u64); // (clicks, impressions)
        let mut without = (0u64, 0u64);
        for (i, e) in log.events.iter().enumerate() {
            if e.stream != StreamId::Impression || e.kw_ad != ad {
                continue;
            }
            if log.truth.bots.contains(&e.user) {
                continue;
            }
            let profile_has_kw = log.events[..i].iter().any(|s| {
                s.stream == StreamId::Keyword
                    && s.user == e.user
                    && s.time > e.time - 6 * HOUR
                    && positives.contains(&s.kw_ad)
            });
            let clicked = log.events[i..].iter().any(|c| {
                c.stream == StreamId::Click
                    && c.user == e.user
                    && c.kw_ad == e.kw_ad
                    && c.time > e.time
                    && c.time <= e.time + cfg.max_click_delay
            });
            let slot = if profile_has_kw {
                &mut with_kw
            } else {
                &mut without
            };
            slot.1 += 1;
            if clicked {
                slot.0 += 1;
            }
        }
        assert!(with_kw.1 > 20, "too few exposed impressions: {with_kw:?}");
        let ctr_with = with_kw.0 as f64 / with_kw.1 as f64;
        let ctr_without = without.0 as f64 / without.1.max(1) as f64;
        assert!(
            ctr_with > 2.0 * ctr_without.max(0.001),
            "ctr with kw {ctr_with} vs without {ctr_without}"
        );
    }

    #[test]
    fn rows_match_unified_schema() {
        let log = small_log();
        let rows = log.rows();
        let schema = crate::unified_schema();
        for r in rows.iter().take(100) {
            r.check(&schema).unwrap();
        }
    }
}
