//! Batch execution of CQ plans.
//!
//! Evaluates a [`LogicalPlan`] bottom-up over fully materialized input
//! streams, memoizing each node's output so DAG fan-out (Multicast) computes
//! shared sub-plans once. This is the engine TiMR embeds inside every
//! map-reduce reducer (paper §III-A step 4): the reducer binds its partition
//! of rows to the fragment's `Source` leaves and returns the root stream.

use crate::error::{Result, TemporalError};
use crate::operators;
use crate::plan::{LogicalPlan, NodeId, Operator};
use crate::stream::EventStream;
use rustc_hash::FxHashMap;

/// Named input bindings for a plan's `Source` leaves.
pub type Bindings = FxHashMap<String, EventStream>;

/// Build bindings from `(name, stream)` pairs.
pub fn bindings(pairs: Vec<(&str, EventStream)>) -> Bindings {
    pairs.into_iter().map(|(n, s)| (n.to_string(), s)).collect()
}

/// Execute `plan` against `sources`; returns one stream per plan output.
pub fn execute(plan: &LogicalPlan, sources: &Bindings) -> Result<Vec<EventStream>> {
    let mut exec = Executor {
        sources,
        group_input: None,
        cache: FxHashMap::default(),
        counts: consumer_counts(plan),
    };
    plan.roots()
        .iter()
        .map(|&root| exec.eval(plan, root))
        .collect()
}

/// Execute a single-output plan and return its only stream.
pub fn execute_single(plan: &LogicalPlan, sources: &Bindings) -> Result<EventStream> {
    let mut outputs = execute(plan, sources)?;
    if outputs.len() != 1 {
        return Err(TemporalError::Plan(format!(
            "expected a single-output plan, got {} outputs",
            outputs.len()
        )));
    }
    Ok(outputs.pop().unwrap())
}

struct Executor<'a> {
    sources: &'a Bindings,
    /// Bound stream for `GroupInput` when running a GroupApply sub-plan.
    group_input: Option<&'a EventStream>,
    cache: FxHashMap<NodeId, EventStream>,
    counts: Vec<u32>,
}

/// Number of consumers per node; only fan-out (Multicast) nodes need
/// their results cached, so single-consumer intermediates are moved, not
/// cloned.
fn consumer_counts(plan: &LogicalPlan) -> Vec<u32> {
    let mut counts = vec![0u32; plan.nodes().len()];
    for node in plan.nodes() {
        for &input in &node.inputs {
            counts[input] += 1;
        }
    }
    counts
}

impl<'a> Executor<'a> {
    fn eval(&mut self, plan: &LogicalPlan, id: NodeId) -> Result<EventStream> {
        if let Some(hit) = self.cache.get(&id) {
            return Ok(hit.clone());
        }
        let node = plan.node(id);
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            inputs.push(self.eval(plan, input)?);
        }
        let out = match &node.op {
            Operator::Source { name, schema } => {
                let stream = self.sources.get(name).ok_or_else(|| {
                    TemporalError::Input(format!("no binding for source `{name}`"))
                })?;
                if stream.schema() != schema {
                    return Err(TemporalError::Input(format!(
                        "source `{name}` bound with schema {}, plan expects {schema}",
                        stream.schema()
                    )));
                }
                stream.clone()
            }
            Operator::GroupInput { .. } => self
                .group_input
                .ok_or_else(|| {
                    TemporalError::Plan("GroupInput outside a GroupApply sub-plan".into())
                })?
                .clone(),
            Operator::Filter { predicate } => operators::filter(&inputs[0], predicate)?,
            Operator::Project { exprs } => operators::project(&inputs[0], exprs)?,
            Operator::AlterLifetime { op } => operators::alter_lifetime(&inputs[0], op)?,
            Operator::Aggregate { aggs } => operators::aggregate(&inputs[0], aggs)?,
            Operator::GroupApply { keys, subplan } => {
                let sources = self.sources;
                let mut run = |sub: &LogicalPlan, group: EventStream| {
                    let mut inner = Executor {
                        sources,
                        group_input: Some(&group),
                        cache: FxHashMap::default(),
                        counts: consumer_counts(sub),
                    };
                    inner.eval(sub, sub.roots()[0])
                };
                operators::group_apply(&inputs[0], keys, subplan, &mut run)?
            }
            Operator::Union => {
                let refs: Vec<&EventStream> = inputs.iter().collect();
                operators::union(&refs)?
            }
            Operator::TemporalJoin { keys, residual } => {
                operators::temporal_join(&inputs[0], &inputs[1], keys, residual.as_ref())?
            }
            Operator::AntiSemiJoin { keys } => {
                operators::anti_semi_join(&inputs[0], &inputs[1], keys)?
            }
            Operator::HopUdo { hop, width, udo } => {
                operators::hop_udo(&inputs[0], *hop, *width, udo)?
            }
        };
        // Cache only fan-out (Multicast) nodes: single-consumer results
        // are moved to their parent without an extra full-stream clone.
        if self.counts.get(id).copied().unwrap_or(0) > 1 {
            self.cache.insert(id, out.clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::event::Event;
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use crate::time::Lifetime;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn bt_schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    fn sample_events() -> EventStream {
        // Clicks (StreamId=1) on two ads by two users, plus a search.
        EventStream::new(
            bt_schema(),
            vec![
                Event::point(10, row![10i64, 1i32, "u1", "adA"]),
                Event::point(20, row![20i64, 1i32, "u2", "adA"]),
                Event::point(25, row![25i64, 2i32, "u1", "cars"]),
                Event::point(200, row![200i64, 1i32, "u1", "adB"]),
            ],
        )
    }

    #[test]
    fn running_click_count_end_to_end() {
        // Example 1: per-ad click count over a 100-tick window.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("ClickCount"));
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        let n = result.normalize();
        assert_eq!(
            n.events(),
            &[
                Event::interval(10, 20, row!["adA", 1i64]),
                Event::interval(20, 110, row!["adA", 2i64]),
                Event::interval(110, 120, row!["adA", 1i64]),
                Event::interval(200, 300, row!["adB", 1i64]),
            ]
        );
    }

    #[test]
    fn multicast_subplans_run_once_and_agree() {
        // One source feeding two filters then a union: the source node must
        // be evaluated once (cache) and results must be consistent.
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let searches = input.filter(col("StreamId").eq(lit(2)));
        let out = clicks.union(searches);
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn multi_output_plans_return_each_root() {
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let searches = input.filter(col("StreamId").eq(lit(2)));
        let plan = q.build(vec![clicks, searches]).unwrap();
        let outs = execute(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 3);
        assert_eq!(outs[1].len(), 1);
    }

    #[test]
    fn missing_binding_is_an_error() {
        let q = Query::new();
        let out = q.source("input", bt_schema()).count("N");
        let plan = q.build(vec![out]).unwrap();
        assert!(matches!(
            execute_single(&plan, &bindings(vec![])),
            Err(TemporalError::Input(_))
        ));
    }

    #[test]
    fn wrong_source_schema_is_an_error() {
        let q = Query::new();
        let out = q.source("input", bt_schema()).count("N");
        let plan = q.build(vec![out]).unwrap();
        let wrong = EventStream::empty(Schema::timestamped(vec![]));
        assert!(execute_single(&plan, &bindings(vec![("input", wrong)])).is_err());
    }

    #[test]
    fn nested_group_apply() {
        // Group by user, then inside each user group, group by keyword.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .group_apply(&["UserId"], |g| {
                g.group_apply(&["KwAdId"], |k| k.window(50).count("N"))
            });
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        let n = result.normalize();
        assert_eq!(n.schema().names(), vec!["UserId", "KwAdId", "N"]);
        assert!(n
            .events()
            .iter()
            .any(|e| e.payload == row!["u1", "cars", 1i64] && e.lifetime == Lifetime::new(25, 75)));
    }

    #[test]
    fn physical_order_does_not_change_results() {
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();

        let forward = sample_events();
        let mut reversed_events = forward.events().to_vec();
        reversed_events.reverse();
        let reversed = EventStream::new(bt_schema(), reversed_events);

        let a = execute_single(&plan, &bindings(vec![("input", forward)])).unwrap();
        let b = execute_single(&plan, &bindings(vec![("input", reversed)])).unwrap();
        assert!(a.same_relation(&b));
    }
}
