//! Plan annotation: adding data-parallel semantics with logical exchange
//! operators (paper §III-A step 2).
//!
//! An exchange on edge `(consumer, input index)` declares that the stream
//! flowing along that edge is repartitioned before the consumer reads it.
//! A stream is partitioned on key `X` when events agreeing on `X` land on
//! the same machine; exchanges are the only operators that change this
//! property.
//!
//! Annotations can come from user hints (this module's builder API) or from
//! the cost-based optimizer ([`crate::optimizer`]). Either way,
//! [`Annotation::validate`] enforces the structural rules the fragmenter
//! needs:
//!
//! - every exchange key must consist of columns present in the producer's
//!   output schema;
//! - all exchange edges feeding one fragment must carry the same key
//!   (paper footnote 1: multi-input operators have identically partitioned
//!   inputs);
//! - a node shared by several fragments must be a fragment boundary on all
//!   its outgoing edges (its output is materialized once in the DFS and
//!   re-mapped by each consuming stage).
//! - the partitioning key must be *compatible* with every operator in the
//!   fragment: a GroupApply (or join) may only be keyed by a subset of its
//!   grouping (join) columns, per the property rules of paper §VI.

use crate::error::{Result, TimrError};
use std::collections::BTreeMap;
use temporal::plan::{LogicalPlan, NodeId, Operator};

/// The partitioning key carried by an exchange.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExchangeKey {
    /// Repartition by `hash(columns) mod machines` (paper §III-C.3).
    Keys(Vec<String>),
    /// Gather everything onto a single partition.
    Single,
    /// Deterministic spread with no key (the ⊥ "randomly partitioned"
    /// stream of §VI); only valid below all-stateless fragments.
    Spread,
}

impl ExchangeKey {
    /// Build a key exchange from column names.
    pub fn keys(columns: &[&str]) -> Self {
        ExchangeKey::Keys(columns.iter().map(|c| c.to_string()).collect())
    }

    /// The key columns (empty for `Single`/`Spread`).
    pub fn columns(&self) -> &[String] {
        match self {
            ExchangeKey::Keys(c) => c,
            ExchangeKey::Single | ExchangeKey::Spread => &[],
        }
    }
}

impl std::fmt::Display for ExchangeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeKey::Keys(c) => write!(f, "E({})", c.join(", ")),
            ExchangeKey::Single => write!(f, "E(⊤)"),
            ExchangeKey::Spread => write!(f, "E(⊥)"),
        }
    }
}

/// An edge in the plan DAG: `(consumer node, input index)`.
pub type Edge = (NodeId, usize);

/// A set of exchange placements over a plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Annotation {
    exchanges: BTreeMap<Edge, ExchangeKey>,
}

impl Annotation {
    /// No exchanges: the whole plan runs as one single-partition fragment.
    pub fn none() -> Self {
        Annotation::default()
    }

    /// Add an exchange below input `input_idx` of `consumer`.
    pub fn exchange(mut self, consumer: NodeId, input_idx: usize, key: ExchangeKey) -> Self {
        self.exchanges.insert((consumer, input_idx), key);
        self
    }

    /// All exchange placements.
    pub fn exchanges(&self) -> &BTreeMap<Edge, ExchangeKey> {
        &self.exchanges
    }

    /// The exchange on an edge, if any.
    pub fn on_edge(&self, consumer: NodeId, input_idx: usize) -> Option<&ExchangeKey> {
        self.exchanges.get(&(consumer, input_idx))
    }

    /// Number of exchanges (repartitioning steps).
    pub fn len(&self) -> usize {
        self.exchanges.len()
    }

    /// True when no exchanges are placed.
    pub fn is_empty(&self) -> bool {
        self.exchanges.is_empty()
    }

    /// Render the plan with exchange markers on annotated edges, in the
    /// style of paper Fig 7.
    pub fn display_over(&self, plan: &LogicalPlan) -> String {
        let mut out = String::new();
        for (i, &root) in plan.roots().iter().enumerate() {
            out.push_str(&format!("output {i}:\n"));
            self.fmt_node(plan, root, 1, &mut out);
        }
        out
    }

    fn fmt_node(&self, plan: &LogicalPlan, id: NodeId, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let node = plan.node(id);
        match &node.op {
            Operator::Source { name, .. } => out.push_str(&format!("{pad}Source `{name}`\n")),
            Operator::GroupApply { keys, .. } => {
                out.push_str(&format!("{pad}GroupApply ({})\n", keys.join(", ")))
            }
            op => out.push_str(&format!("{pad}{}\n", op.name())),
        }
        for (idx, &child) in node.inputs.iter().enumerate() {
            if let Some(key) = self.on_edge(id, idx) {
                out.push_str(&format!("{}  {key}\n", "  ".repeat(indent)));
            }
            self.fmt_node(plan, child, indent + 1, out);
        }
    }

    /// Check structural validity against `plan` (see module docs).
    /// Fragment-level checks (key agreement, interior sharing, operator
    /// compatibility) run during fragmentation, which this calls.
    pub fn validate(&self, plan: &LogicalPlan) -> Result<()> {
        for (&(consumer, input_idx), key) in &self.exchanges {
            let node = plan
                .nodes()
                .get(consumer)
                .ok_or_else(|| TimrError::Annotation(format!("no node {consumer}")))?;
            let &child = node.inputs.get(input_idx).ok_or_else(|| {
                TimrError::Annotation(format!(
                    "node {consumer} ({}) has no input {input_idx}",
                    node.op.name()
                ))
            })?;
            let child_schema = plan.schema_of(child);
            for c in key.columns() {
                if !child_schema.contains(c) {
                    return Err(TimrError::Annotation(format!(
                        "exchange key column `{c}` not in producer schema {child_schema}"
                    )));
                }
            }
        }
        crate::fragment::fragment(plan, self).map(|_| ())
    }
}

/// The partitioning keys an operator can accept for its input streams,
/// used to check annotation compatibility and to drive the optimizer
/// (paper §VI "Deriving Required Properties for CQ Operators").
///
/// Returns `None` when the operator imposes no constraint (stateless
/// operators can run under any partitioning); `Some(cols)` means the
/// input's partitioning key must be a subset of `cols`.
pub fn required_key_superset(op: &Operator) -> Option<Vec<String>> {
    match op {
        Operator::GroupApply { keys, .. } => Some(keys.clone()),
        // For joins the constraint applies to both inputs pairwise; the
        // left-column names name the partitioning (right side must use the
        // paired columns — handled by `join_key_pairs`).
        Operator::TemporalJoin { keys, .. } | Operator::AntiSemiJoin { keys } => {
            Some(keys.iter().map(|(l, _)| l.clone()).collect())
        }
        // Aggregate / HopUdo over the whole stream require a single
        // partition (or temporal partitioning, chosen explicitly).
        Operator::Aggregate { .. } | Operator::HopUdo { .. } => Some(vec![]),
        _ => None,
    }
}

/// For a join-like operator, map a left-side partitioning column to its
/// right-side pair.
pub fn join_right_column<'a>(op: &'a Operator, left_col: &str) -> Option<&'a str> {
    match op {
        Operator::TemporalJoin { keys, .. } | Operator::AntiSemiJoin { keys } => keys
            .iter()
            .find(|(l, _)| l == left_col)
            .map(|(_, r)| r.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::schema::{ColumnType, Field};
    use relation::Schema;
    use temporal::expr::{col, lit};
    use temporal::plan::Query;

    fn bt_payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    fn click_count_plan() -> (LogicalPlan, NodeId) {
        let q = Query::new();
        let out = q
            .source("input", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let ga = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::GroupApply { .. }))
            .unwrap();
        (plan, ga)
    }

    #[test]
    fn valid_annotation_passes() {
        let (plan, ga) = click_count_plan();
        let ann = Annotation::none().exchange(ga, 0, ExchangeKey::keys(&["KwAdId"]));
        ann.validate(&plan).unwrap();
        assert_eq!(ann.len(), 1);
    }

    #[test]
    fn unknown_key_column_rejected() {
        let (plan, ga) = click_count_plan();
        let ann = Annotation::none().exchange(ga, 0, ExchangeKey::keys(&["Nope"]));
        assert!(ann.validate(&plan).is_err());
    }

    #[test]
    fn bad_edge_rejected() {
        let (plan, ga) = click_count_plan();
        let ann = Annotation::none().exchange(ga, 5, ExchangeKey::keys(&["KwAdId"]));
        assert!(ann.validate(&plan).is_err());
        let ann = Annotation::none().exchange(999, 0, ExchangeKey::Single);
        assert!(ann.validate(&plan).is_err());
    }

    #[test]
    fn display_shows_exchanges_at_edges() {
        let (plan, ga) = click_count_plan();
        let ann = Annotation::none().exchange(ga, 0, ExchangeKey::keys(&["KwAdId"]));
        let text = ann.display_over(&plan);
        // Fig 7 shape: the exchange sits between GroupApply and its input.
        let ga_pos = text.find("GroupApply (KwAdId)").unwrap();
        let ex_pos = text.find("E(KwAdId)").unwrap();
        let src_pos = text.find("Source `input`").unwrap();
        assert!(ga_pos < ex_pos && ex_pos < src_pos, "layout:\n{text}");
    }

    #[test]
    fn required_keys_reflect_operator_semantics() {
        let (plan, ga) = click_count_plan();
        let req = required_key_superset(&plan.node(ga).op);
        assert_eq!(req, Some(vec!["KwAdId".to_string()]));
        // A filter imposes no requirement.
        let filter = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap();
        assert_eq!(required_key_superset(&plan.node(filter).op), None);
    }
}
