//! AntiSemiJoin: temporal set difference (paper §II-A.2).
//!
//! Removes the *portions* of left events that temporally intersect some
//! matching right event. For point-event left inputs — the paper's usage in
//! bot elimination (drop activity of flagged bot users, Fig 11) and
//! non-click derivation (drop impressions that led to a click, Fig 12) —
//! this reduces to "drop covered points". Interval left events are split
//! into surviving fragments.
//!
//! Keys are hash-then-compare ([`KeySelector`]); covers for distinct keys
//! that collide on the hash stay separate (each keeps a representative
//! right row for the cell comparison — merging covers across colliding
//! keys would wrongly subtract one key's intervals from another's events).
//! Left events are consumed and **moved** to the output in the common
//! no-overlap case; only genuine fragmenting clones a payload.

use crate::error::Result;
use crate::event::Event;
use crate::key::KeySelector;
use crate::stream::EventStream;
use crate::time::{merge_intervals, Lifetime};
use relation::Row;
use rustc_hash::FxHashMap;

/// One right-side key's merged cover, with a representative row to resolve
/// hash collisions by actual cell comparison.
struct Cover {
    repr: Row,
    intervals: Vec<Lifetime>,
}

/// Subtract from `left` the time ranges covered by key-matching events of
/// `right`.
pub fn anti_semi_join(
    left: EventStream,
    right: &EventStream,
    keys: &[(String, String)],
) -> Result<EventStream> {
    let lschema = left.schema().clone();
    let rschema = right.schema();
    let lnames: Vec<&str> = keys.iter().map(|(l, _)| l.as_str()).collect();
    let rnames: Vec<&str> = keys.iter().map(|(_, r)| r.as_str()).collect();
    let lsel = KeySelector::new(&lschema, &lnames)?;
    let rsel = KeySelector::new(rschema, &rnames)?;

    // Per key: merged, disjoint, sorted cover of the right side.
    let mut covers: FxHashMap<u64, Vec<Cover>> = FxHashMap::default();
    for e in right.events() {
        let bucket = covers.entry(rsel.hash(&e.payload)).or_default();
        match bucket
            .iter_mut()
            .find(|c| rsel.matches_same(&c.repr, &e.payload))
        {
            Some(c) => c.intervals.push(e.lifetime),
            None => bucket.push(Cover {
                repr: e.payload.clone(),
                intervals: vec![e.lifetime],
            }),
        }
    }
    for bucket in covers.values_mut() {
        for c in bucket {
            let merged = merge_intervals(std::mem::take(&mut c.intervals));
            c.intervals = merged;
        }
    }

    let mut out = Vec::with_capacity(left.len());
    for mut e in left.into_events() {
        let cover = covers
            .get(&lsel.hash(&e.payload))
            .and_then(|b| b.iter().find(|c| lsel.matches(&e.payload, &rsel, &c.repr)));
        match cover {
            None => out.push(e),
            Some(c) => {
                let mut fragments = e.lifetime.subtract_all(&c.intervals).into_iter();
                if let Some(first) = fragments.next() {
                    // The moved event carries the first fragment (the
                    // common single-fragment case clones nothing); any
                    // further fragments clone the payload.
                    let extra: Vec<Event> = fragments.map(|lt| e.with_lifetime(lt)).collect();
                    e.lifetime = first;
                    out.push(e);
                    out.extend(extra);
                }
            }
        }
    }
    Ok(EventStream::new(lschema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn user_schema() -> Schema {
        Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("What", ColumnType::Str),
        ])
    }

    #[test]
    fn drops_points_covered_by_matching_intervals() {
        // Bot-elimination shape: user activity (points) minus bot periods.
        let activity = EventStream::new(
            user_schema(),
            vec![
                Event::point(5, row!["u1", "search"]),
                Event::point(50, row!["u1", "click"]),
                Event::point(5, row!["u2", "search"]),
            ],
        );
        let bot_periods = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![Event::interval(0, 10, row!["u1"])],
        );
        let out = anti_semi_join(
            activity,
            &bot_periods,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        let n = out.normalize();
        // u1@5 is covered; u1@50 and u2@5 survive.
        assert_eq!(n.len(), 2);
        assert_eq!(n.events()[0].payload, row!["u2", "search"]);
        assert_eq!(n.events()[1].payload, row!["u1", "click"]);
    }

    #[test]
    fn interval_left_events_fragment() {
        let left = EventStream::new(
            user_schema(),
            vec![Event::interval(0, 100, row!["u1", "x"])],
        );
        let right = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![
                Event::interval(10, 20, row!["u1"]),
                Event::interval(15, 30, row!["u1"]),
            ],
        );
        let out = anti_semi_join(
            left,
            &right,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        assert_eq!(
            out.events().iter().map(|e| e.lifetime).collect::<Vec<_>>(),
            vec![Lifetime::new(0, 10), Lifetime::new(30, 100)]
        );
    }

    #[test]
    fn unmatched_keys_pass_through() {
        let left = EventStream::new(user_schema(), vec![Event::point(1, row!["u9", "x"])]);
        let right = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![Event::interval(0, 10, row!["u1"])],
        );
        let out = anti_semi_join(
            left,
            &right,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }
}
