//! Fig 16 as a Criterion benchmark: temporal partitioning of a sliding
//! count at three span widths plus the unpartitioned baseline. Criterion
//! measures real wall time on the local pool (the experiments binary adds
//! the simulated 150-machine makespan view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relation::row;
use relation::schema::{ColumnType, Field};
use temporal::{Query, HOUR, MIN};
use timr::temporal_partition::TemporalPartitionJob;
use timr::EventEncoding;

fn plan() -> temporal::LogicalPlan {
    let q = Query::new();
    let payload = relation::Schema::new(vec![Field::new("AdId", ColumnType::Str)]);
    let out = q.source("clicks", payload).window(30 * MIN).count("N");
    q.build(vec![out]).unwrap()
}

fn bench_spans(c: &mut Criterion) {
    let events: i64 = 40_000;
    let duration = 12 * HOUR;
    let rows: Vec<relation::Row> = (0..events)
        .map(|i| row![i * duration / events, format!("ad{}", i % 10)])
        .collect();
    let payload = relation::Schema::new(vec![Field::new("AdId", ColumnType::Str)]);
    let dataset_schema = EventEncoding::Point.dataset_schema(&payload);

    let mut group = c.benchmark_group("fig16_spans");
    group.sample_size(10);
    for (name, width) in [
        ("15min", 15 * MIN),
        ("60min", 60 * MIN),
        ("240min", 4 * HOUR),
        ("single", duration + HOUR),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &width, |b, &w| {
            b.iter(|| {
                let dfs = mapreduce::Dfs::new();
                dfs.put(
                    "clicks",
                    mapreduce::Dataset::single(dataset_schema.clone(), rows.clone()),
                )
                .unwrap();
                TemporalPartitionJob::new("bench", plan(), w)
                    .run(&dfs, &mapreduce::Cluster::new())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spans);
criterion_main!(benches);
