//! Rows: ordered tuples of [`Value`]s.

use crate::error::{RelationError, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A tuple of values, interpreted against a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values.
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cell at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Cell under column `name` of `schema`.
    pub fn get_named(&self, schema: &Schema, name: &str) -> Result<&Value> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Validate the row against a schema: arity and per-cell types.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        if self.values.len() != schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.len(),
                actual: self.values.len(),
            });
        }
        for (v, f) in self.values.iter().zip(schema.fields()) {
            if !f.ty.admits(v) {
                return Err(RelationError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.ty.to_string(),
                    actual: v.type_name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Concatenate two rows (the payload combination performed by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Extract the cells at `indices`, cloning.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate in-memory width in bytes (sum of cell widths), used by
    /// the optimizer's exchange-cost model.
    pub fn width(&self) -> usize {
        self.values.iter().map(Value::width).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Shorthand for building a row from heterogeneous literals:
/// `row![1i64, "user", 2i32]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    #[test]
    fn row_macro_and_named_access() {
        let r = row![10i64, "u1"];
        assert_eq!(r.len(), 2);
        assert_eq!(r.get_named(&schema(), "UserId").unwrap(), &Value::str("u1"));
    }

    #[test]
    fn check_catches_arity_and_type_errors() {
        let s = schema();
        assert!(row![10i64, "u1"].check(&s).is_ok());
        assert!(matches!(
            row![10i64].check(&s),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            row![10i64, 5i64].check(&s),
            Err(RelationError::TypeMismatch { .. })
        ));
        // Null inhabits any column type.
        assert!(Row::new(vec![Value::Long(1), Value::Null])
            .check(&s)
            .is_ok());
    }

    #[test]
    fn concat_and_project() {
        let r = row![1i64, "a"].concat(&row![2i64]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.project(&[2, 0]), row![2i64, 1i64]);
    }

    #[test]
    fn rows_order_lexicographically() {
        assert!(row![1i64, "a"] < row![1i64, "b"]);
        assert!(row![1i64] < row![2i64]);
    }
}
