//! Fragment → map-reduce stage conversion (paper §III-A step 4).
//!
//! Each fragment becomes one stage. The map phase partitions every stage
//! input by `hash(fragment key) mod partitions` — the bucketing trick of
//! §III-C.3 that instantiates one embedded DSMS per machine instead of one
//! per key value. The reduce phase is [`DsmsReducer`]: the stand-alone
//! method `P` from the paper, which decodes its partition's rows into
//! events, runs the *unmodified* DSMS on the fragment plan (the generated
//! method `P'`), and pulls result events back through a blocking queue.

use crate::annotate::Annotation;
use crate::bridge::{pull_through_queue, EventEncoding};
use crate::error::{Result, TimrError};
use crate::fragment::{fragment, Fragment, FragmentInput, FragmentKey};
use crate::mapper::{DsmsMapper, MapperUnit};
use mapreduce::{MrError, Partitioner, ReduceInput, Reducer, ReducerContext, Stage};
use relation::{Row, Schema};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;
use temporal::exec::{DataBindings, ExecMode, ExecOptions, StreamData};
use temporal::plan::{LogicalPlan, PushDown};
use temporal::EventStream;

/// A compiled TiMR job: ordered stages plus output metadata.
#[derive(Debug, Clone)]
pub struct CompiledJob {
    /// Stages in execution order.
    pub stages: Vec<Stage>,
    /// DFS name of the final output dataset.
    pub output: String,
    /// Payload schema of the final output.
    pub output_payload: Schema,
    /// Lifetime encoding of the final output dataset.
    pub output_encoding: EventEncoding,
    /// Stateless operators moved map-side by plan push-down, all stages.
    pub pushed_ops: usize,
    /// Partial-aggregation steps moved map-side, all stages.
    pub pushed_partials: usize,
}

/// Compile-time switches shared by [`compile_with_options`] and the
/// multi-query driver.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// DSMS operator-implementation mode for the embedded DSMS instances.
    pub exec_mode: ExecMode,
    /// Split each stage plan at its first exchange and run the
    /// exchange-free prefix (plus combinable partial aggregations)
    /// map-side ([`temporal::plan::push_down`]). On by default — the
    /// split is validated and byte-identity-preserving, so turning it
    /// off is only interesting for benchmarking the shuffle savings.
    pub push_down: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            exec_mode: ExecMode::Compiled,
            push_down: true,
        }
    }
}

/// Compile `plan` + `annotation` into map-reduce stages.
///
/// * `job_name` prefixes intermediate dataset names.
/// * `machines` is the reduce-partition count for keyed fragments.
/// * `source_encodings` gives the lifetime encoding of each raw source
///   dataset (defaults to [`EventEncoding::Point`], the raw-log encoding).
pub fn compile(
    plan: &LogicalPlan,
    annotation: &Annotation,
    job_name: &str,
    machines: usize,
    source_encodings: &BTreeMap<String, EventEncoding>,
) -> Result<CompiledJob> {
    compile_with_mode(
        plan,
        annotation,
        job_name,
        machines,
        source_encodings,
        ExecMode::Compiled,
    )
}

/// [`compile`] with an explicit DSMS operator-implementation mode for the
/// embedded reducers (used by benchmarks to pin the interpreted baseline).
pub fn compile_with_mode(
    plan: &LogicalPlan,
    annotation: &Annotation,
    job_name: &str,
    machines: usize,
    source_encodings: &BTreeMap<String, EventEncoding>,
    exec_mode: ExecMode,
) -> Result<CompiledJob> {
    compile_with_options(
        plan,
        annotation,
        job_name,
        machines,
        source_encodings,
        CompileOptions {
            exec_mode,
            ..CompileOptions::default()
        },
    )
}

/// [`compile`] with explicit [`CompileOptions`].
pub fn compile_with_options(
    plan: &LogicalPlan,
    annotation: &Annotation,
    job_name: &str,
    machines: usize,
    source_encodings: &BTreeMap<String, EventEncoding>,
    options: CompileOptions,
) -> Result<CompiledJob> {
    if machines == 0 {
        return Err(TimrError::Compile("machines must be positive".into()));
    }
    let fragments = fragment(plan, annotation)?;
    let mut stages = Vec::with_capacity(fragments.len());
    let mut output = String::new();
    let mut output_payload = plan.schema_of(plan.roots()[0]).clone();
    let mut pushed_ops = 0usize;
    let mut pushed_partials = 0usize;

    for frag in &fragments {
        let (stage, pd) = compile_fragment(frag, job_name, machines, source_encodings, options)?;
        if let Some(pd) = pd {
            pushed_ops += pd.pushed_ops;
            pushed_partials += pd.partials;
        }
        if frag.is_final {
            output = stage.output.clone();
            output_payload = frag.plan.schema_of(frag.plan.roots()[0]).clone();
        }
        stages.push(stage);
    }
    Ok(CompiledJob {
        stages,
        output,
        output_payload,
        output_encoding: EventEncoding::Interval,
        pushed_ops,
        pushed_partials,
    })
}

fn compile_fragment(
    frag: &Fragment,
    job_name: &str,
    machines: usize,
    source_encodings: &BTreeMap<String, EventEncoding>,
    options: CompileOptions,
) -> Result<(Stage, Option<PushDown>)> {
    let exec_mode = options.exec_mode;
    let (partitioner, partitions) = match &frag.key {
        FragmentKey::Keys(cols) => (
            // Hash over the *dataset* row: framing columns precede payload
            // columns, so we address the key by name, which the reducer's
            // dataset schemas preserve.
            Partitioner::KeyHash {
                columns: cols.clone(),
            },
            machines,
        ),
        FragmentKey::Single => (Partitioner::Single, 1),
        FragmentKey::Spread => (Partitioner::Spread, machines),
    };

    // Split the fragment plan at the exchange. `Spread` routes on the
    // whole row, so rewriting rows map-side would change routing —
    // push-down is only attempted under content-addressed partitioners
    // (KeyHash preserves its key columns; Single has nothing to route).
    let partition_cols = match &frag.key {
        FragmentKey::Keys(cols) => Some(Some(cols.as_slice())),
        FragmentKey::Single => Some(None),
        FragmentKey::Spread => None,
    };
    let pd: Option<PushDown> = match partition_cols {
        Some(cols) if options.push_down => {
            let pd = temporal::plan::push_down(&frag.plan, cols).map_err(TimrError::Temporal)?;
            pd.any().then_some(pd)
        }
        _ => None,
    };
    let reduce_plan = pd
        .as_ref()
        .map(|p| &p.residual)
        .unwrap_or(&frag.plan)
        .clone();

    let mut input_names = Vec::with_capacity(frag.inputs.len());
    let mut bindings = Vec::with_capacity(frag.inputs.len());
    let mut units: Vec<Option<MapperUnit>> = Vec::with_capacity(frag.inputs.len());
    for (source_name, input) in &frag.inputs {
        let dataset = input.dataset_name(job_name);
        let raw_encoding = match input {
            FragmentInput::SourceDataset { name } => source_encodings
                .get(name)
                .copied()
                .unwrap_or(EventEncoding::Point),
            FragmentInput::Intermediate { .. } => EventEncoding::Interval,
        };
        let raw_payload = frag
            .plan
            .sources()
            .iter()
            .find(|(n, _)| n == source_name)
            .map(|(_, s)| (*s).clone())
            .expect("fragment input has a source leaf");
        let mapper_plan = pd
            .as_ref()
            .and_then(|p| p.mappers.iter().find(|m| &m.source == source_name));
        input_names.push(dataset);
        match mapper_plan {
            Some(mp) => {
                // The reducer sees this input post-mapper: interval-framed
                // rows carrying the residual source leaf's schema.
                let payload = reduce_plan
                    .sources()
                    .iter()
                    .find(|(n, _)| n == source_name)
                    .map(|(_, s)| (*s).clone())
                    .expect("residual keeps the pushed source leaf");
                units.push(Some(MapperUnit::new(
                    mp,
                    InputBinding {
                        source_name: source_name.clone(),
                        encoding: raw_encoding,
                        payload: raw_payload,
                    },
                    exec_mode,
                )?));
                bindings.push(InputBinding {
                    source_name: source_name.clone(),
                    encoding: EventEncoding::Interval,
                    payload,
                });
            }
            None => {
                units.push(None);
                bindings.push(InputBinding {
                    source_name: source_name.clone(),
                    encoding: raw_encoding,
                    payload: raw_payload,
                });
            }
        }
    }

    let output_dataset = if frag.is_final {
        format!("{job_name}__out")
    } else {
        format!("{job_name}__f{}", frag.root)
    };

    // Fragment annotation: under Fused the stateless chains are collapsed
    // at compile time, so the stage plan carries its FusedFragment
    // boundaries (visible in plan displays) and the per-reduce executor's
    // idempotent re-fuse is a no-op rewrite of an already-fused plan.
    // Fusion runs *after* the push-down split: the mapper and residual
    // halves fuse independently, so a fused fragment never straddles the
    // exchange.
    let frag_plan = if exec_mode == ExecMode::Fused {
        temporal::plan::fuse_plan(&reduce_plan).map_err(TimrError::Temporal)?
    } else {
        reduce_plan
    };
    let reducer = DsmsReducer {
        plan: frag_plan,
        inputs: bindings,
        output_encoding: EventEncoding::Interval,
        exec_mode,
    };
    let mut stage = Stage::new(
        format!("{job_name}/f{}", frag.root),
        input_names,
        output_dataset,
        partitioner,
        partitions,
        Arc::new(reducer),
    )
    .map_err(TimrError::from)?;
    if units.iter().any(Option::is_some) {
        stage = stage.with_mapper(Arc::new(DsmsMapper::new(units, exec_mode)));
    }
    Ok((stage, pd))
}

/// Per-input decode instructions for the reducer. Shared with the
/// multi-query driver ([`crate::multi`]), whose reducer decodes sources the
/// same way but fans results out to one sink per query.
#[derive(Debug, Clone)]
pub(crate) struct InputBinding {
    /// Source name inside the fragment plan.
    pub(crate) source_name: String,
    /// Lifetime encoding of the dataset rows.
    pub(crate) encoding: EventEncoding,
    /// Payload schema (dataset schema minus framing columns).
    pub(crate) payload: Schema,
}

/// Decode one input partition of rows. Columnar mode transposes into a
/// column-major batch; payloads that don't fit their declared types fall
/// back to the row decode (which tolerates them), so the mode never
/// changes which partitions are accepted.
pub(crate) fn bind_rows(
    exec_mode: ExecMode,
    binding: &InputBinding,
    rows: &[Row],
) -> Result<StreamData> {
    Ok(match exec_mode {
        ExecMode::Columnar | ExecMode::Fused => {
            match binding.encoding.decode_batch(rows, &binding.payload)? {
                Some(batch) => StreamData::Batch(batch),
                None => StreamData::Rows(binding.encoding.decode_stream(rows, &binding.payload)?),
            }
        }
        _ => StreamData::Rows(binding.encoding.decode_stream(rows, &binding.payload)?),
    })
}

/// Decode one shuffled input, preferring the copy-free column-batch path
/// when the shuffle delivered binary extents and the reducer runs columnar.
pub(crate) fn bind_reduce_input(
    exec_mode: ExecMode,
    binding: &InputBinding,
    input: &ReduceInput,
) -> Result<StreamData> {
    match input {
        ReduceInput::Batch(batch) if matches!(exec_mode, ExecMode::Columnar | ExecMode::Fused) => {
            match binding
                .encoding
                .decode_column_batch(batch.clone(), &binding.payload)
            {
                Some(events) => Ok(StreamData::Batch(events)),
                None => bind_rows(exec_mode, binding, &input.to_rows()),
            }
        }
        ReduceInput::Batch(_) => bind_rows(exec_mode, binding, &input.to_rows()),
        ReduceInput::Rows(rows) => bind_rows(exec_mode, binding, rows),
    }
}

/// The paper's reducer method `P`: rows → events → embedded DSMS → rows.
#[derive(Debug, Clone)]
pub struct DsmsReducer {
    plan: LogicalPlan,
    inputs: Vec<InputBinding>,
    output_encoding: EventEncoding,
    exec_mode: ExecMode,
}

impl DsmsReducer {
    /// Run the embedded DSMS over decoded sources and pull rows back.
    fn execute(&self, ctx: &ReducerContext, sources: DataBindings) -> mapreduce::Result<Vec<Row>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        // Bindings are rebuilt per reduce call, so hand the executor
        // ownership: the decoded partition is moved into the plan and the
        // first in-place operator mutates it with zero survivor clones.
        // The embedded DSMS fans GroupApply groups out on the cluster's
        // per-reducer pool (the `dsms_threads` knob); the merge is
        // sorted-key ordered, so output stays byte-identical at any width.
        let options = ExecOptions::with_mode(self.exec_mode).on_pool(Arc::clone(&ctx.dsms_pool));
        let result: EventStream =
            temporal::exec::execute_single_owned_data(&self.plan, sources, &options)
                .map_err(|e| to_mr(TimrError::Temporal(e)))?;
        pull_through_queue(self.output_encoding, result).map_err(to_mr)
    }
}

impl Reducer for DsmsReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        let payload = self.plan.schema_of(self.plan.roots()[0]);
        Ok(self.output_encoding.dataset_schema(payload))
    }

    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        let mut sources: DataBindings = FxHashMap::default();
        for (binding, rows) in self.inputs.iter().zip(inputs) {
            let data = bind_rows(self.exec_mode, binding, rows).map_err(to_mr)?;
            sources.insert(binding.source_name.clone(), data);
        }
        self.execute(ctx, sources)
    }

    /// The binary-extent entry: when the shuffle delivers a decoded
    /// [`relation::ColumnBatch`] and the reducer runs columnar, the
    /// framing columns split off into lifetime vectors without a row
    /// materialization or text re-parse in between
    /// ([`EventEncoding::decode_column_batch`]). Anything the copy-free
    /// path can't take — other exec modes, legacy row chunks, bad framing
    /// — falls back to the row path with identical acceptance and errors.
    fn reduce_shuffled(
        &self,
        ctx: &ReducerContext,
        inputs: &[ReduceInput],
    ) -> mapreduce::Result<Vec<Row>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        let mut sources: DataBindings = FxHashMap::default();
        for (binding, input) in self.inputs.iter().zip(inputs) {
            let data = bind_reduce_input(self.exec_mode, binding, input).map_err(to_mr)?;
            sources.insert(binding.source_name.clone(), data);
        }
        self.execute(ctx, sources)
    }
}
