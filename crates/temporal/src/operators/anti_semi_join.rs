//! AntiSemiJoin: temporal set difference (paper §II-A.2).
//!
//! Removes the *portions* of left events that temporally intersect some
//! matching right event. For point-event left inputs — the paper's usage in
//! bot elimination (drop activity of flagged bot users, Fig 11) and
//! non-click derivation (drop impressions that led to a click, Fig 12) —
//! this reduces to "drop covered points". Interval left events are split
//! into surviving fragments.

use crate::error::{Result, TemporalError};
use crate::stream::EventStream;
use crate::time::{merge_intervals, Lifetime};
use relation::Value;
use rustc_hash::FxHashMap;

/// Subtract from `left` the time ranges covered by key-matching events of
/// `right`.
pub fn anti_semi_join(
    left: &EventStream,
    right: &EventStream,
    keys: &[(String, String)],
) -> Result<EventStream> {
    let lschema = left.schema();
    let rschema = right.schema();
    let lkeys: Vec<usize> = keys
        .iter()
        .map(|(l, _)| lschema.index_of(l).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<usize> = keys
        .iter()
        .map(|(_, r)| rschema.index_of(r).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;

    // Per key: merged, disjoint, sorted cover of the right side.
    let mut covers: FxHashMap<Vec<Value>, Vec<Lifetime>> = FxHashMap::default();
    for e in right.events() {
        let key: Vec<Value> = rkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        covers.entry(key).or_default().push(e.lifetime);
    }
    for intervals in covers.values_mut() {
        let merged = merge_intervals(std::mem::take(intervals));
        *intervals = merged;
    }

    let mut out = Vec::with_capacity(left.len());
    for e in left.events() {
        let key: Vec<Value> = lkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        match covers.get(&key) {
            None => out.push(e.clone()),
            Some(holes) => {
                for fragment in e.lifetime.subtract_all(holes) {
                    out.push(e.with_lifetime(fragment));
                }
            }
        }
    }
    Ok(EventStream::new(lschema.clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn user_schema() -> Schema {
        Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("What", ColumnType::Str),
        ])
    }

    #[test]
    fn drops_points_covered_by_matching_intervals() {
        // Bot-elimination shape: user activity (points) minus bot periods.
        let activity = EventStream::new(
            user_schema(),
            vec![
                Event::point(5, row!["u1", "search"]),
                Event::point(50, row!["u1", "click"]),
                Event::point(5, row!["u2", "search"]),
            ],
        );
        let bot_periods = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![Event::interval(0, 10, row!["u1"])],
        );
        let out = anti_semi_join(
            &activity,
            &bot_periods,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        let n = out.normalize();
        // u1@5 is covered; u1@50 and u2@5 survive.
        assert_eq!(n.len(), 2);
        assert_eq!(n.events()[0].payload, row!["u2", "search"]);
        assert_eq!(n.events()[1].payload, row!["u1", "click"]);
    }

    #[test]
    fn interval_left_events_fragment() {
        let left = EventStream::new(
            user_schema(),
            vec![Event::interval(0, 100, row!["u1", "x"])],
        );
        let right = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![
                Event::interval(10, 20, row!["u1"]),
                Event::interval(15, 30, row!["u1"]),
            ],
        );
        let out = anti_semi_join(
            &left,
            &right,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        assert_eq!(
            out.events().iter().map(|e| e.lifetime).collect::<Vec<_>>(),
            vec![Lifetime::new(0, 10), Lifetime::new(30, 100)]
        );
    }

    #[test]
    fn unmatched_keys_pass_through() {
        let left = EventStream::new(user_schema(), vec![Event::point(1, row!["u9", "x"])]);
        let right = EventStream::new(
            Schema::new(vec![Field::new("UserId", ColumnType::Str)]),
            vec![Event::interval(0, 10, row!["u1"])],
        );
        let out = anti_semi_join(
            &left,
            &right,
            &[("UserId".to_string(), "UserId".to_string())],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }
}
