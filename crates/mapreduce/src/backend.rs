//! Execution backends: how a stage's map and reduce tasks actually run.
//!
//! [`crate::cluster::Cluster`] owns everything that must be *shared* for
//! byte-identity — input capture, mapped schemas, compiled partitioners,
//! the deterministic shuffle merge/seal/spill, rebuild-on-corruption, and
//! all-or-nothing publish. What it delegates, behind the [`Backend`] /
//! [`StageExec`] trait pair, is the execution of the tasks themselves:
//!
//! - [`ThreadBackend`] — the in-process thread pool the runtime grew up
//!   on, frozen as the baseline. Tasks run under `catch_unwind` in the
//!   [`run_attempts`] retry loop.
//! - `ProcessBackend` (`crate::process`, Unix only) — real worker OS
//!   processes connected over Unix-domain sockets, exchanging binary
//!   extent images, with heartbeats, dead-worker takeover, speculative
//!   re-execution, and preemptive attempt timeouts.
//!
//! Both backends consult the same pure [`crate::chaos::ChaosPlan`] and
//! feed the same shared merge code, which is the determinism argument:
//! whichever backend executes a task, the rows it contributes — and
//! therefore every sealed chunk and published extent — are byte-identical
//! (`tests/prop_cluster_backend.rs` proves it under chaos).

use crate::chaos::{self, FaultKind};
use crate::cluster::{ClusterConfig, MapTaskOut, ShuffleSlot};
use crate::dfs::Dataset;
use crate::error::{MrError, Result, TaskError, TaskPhase};
use crate::job::{CompiledPartitioner, Stage};
use pool::WorkerPool;
use relation::{Row, Schema};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which execution backend a cluster runs its tasks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-process thread pool (the default, and the frozen baseline).
    #[default]
    Threads,
    /// Real worker OS processes over Unix-domain sockets. Falls back to
    /// threads on non-Unix targets (there is no fork to build it on).
    Processes {
        /// Worker processes to spawn per stage.
        workers: usize,
    },
}

/// When the multi-process scheduler launches a speculative duplicate of a
/// straggling task (paper-era clusters call this backup execution):
/// a task still running past `latency_factor ×` the median completed-task
/// latency (and past `min_lag`, so microsecond noise never triggers it)
/// gets a second copy on an idle worker. First valid result wins; because
/// tasks are pure, both copies produce identical bytes, so the race can
/// never change output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Straggler threshold as a multiple of the median completed latency.
    pub latency_factor: f64,
    /// Absolute floor on how far behind a task must be before a duplicate
    /// launches.
    pub min_lag: Duration,
    /// Completed tasks needed in this phase before the median is trusted.
    pub min_completed: usize,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            enabled: true,
            latency_factor: 4.0,
            min_lag: Duration::from_millis(25),
            min_completed: 2,
        }
    }
}

/// Fault-handling tallies for one stage run, updated lock-free from
/// worker threads (and the process scheduler) and folded into
/// `StageStats` at the end. The chaos-driven counts are deterministic
/// functions of the plan and stage shape; the robustness counts
/// (heartbeats, timeouts, speculation, worker loss) depend on real
/// wall-clock races and are reported, not asserted exactly.
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    pub retries: AtomicU64,
    pub panics: AtomicU64,
    pub transients: AtomicU64,
    pub corruptions: AtomicU64,
    pub delays: AtomicU64,
    pub backoff_ns: AtomicU64,
    pub heartbeats_missed: AtomicU64,
    pub timeouts: AtomicU64,
    pub spec_launched: AtomicU64,
    pub spec_wins: AtomicU64,
    pub workers_lost: AtomicU64,
}

impl FaultCounters {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Tally one classified task failure.
    pub fn count_error(&self, err: &TaskError) {
        match err {
            TaskError::Panicked { .. } => self.add(&self.panics, 1),
            TaskError::Transient { .. } => self.add(&self.transients, 1),
            TaskError::Corrupt { .. } => self.add(&self.corruptions, 1),
            TaskError::TimedOut { .. } => self.add(&self.timeouts, 1),
            TaskError::Fatal(_) => {}
        }
    }
}

/// Everything one stage's tasks need, captured once by `run_stage` before
/// any task executes. The multi-process backend forks its workers *after*
/// this is built, so worker processes inherit the stage, its input
/// datasets, and the compiled partitioners by address-space copy — only
/// task descriptors and result extents cross the socket.
pub(crate) struct StageEnv<'a> {
    pub stage: &'a Stage,
    pub inputs: &'a [Dataset],
    pub mapped_schemas: &'a [Schema],
    pub assigners: &'a [CompiledPartitioner],
    pub sink_schemas: &'a [Schema],
    pub config: &'a ClusterConfig,
    pub counters: &'a FaultCounters,
    pub dsms_pool: &'a Arc<WorkerPool>,
    pub chunk_target: u64,
    pub expected_sinks: usize,
}

/// One reduce partition's result: rows per sink, plus measured reduce time.
pub(crate) type ReduceOut = (Vec<Vec<Row>>, Duration);

/// An execution backend: hands out a per-stage [`StageExec`].
pub(crate) trait Backend: Send + Sync + std::fmt::Debug {
    /// Start a stage: acquire whatever workers this backend uses. For the
    /// process backend this is the fork point — it must happen after the
    /// env (inputs included) is fully built.
    fn begin<'e>(&'e self, env: &'e StageEnv<'e>) -> Result<Box<dyn StageExec<'e> + 'e>>;
}

/// One stage's task executor. Map tasks may arrive in several waves
/// (budgeted shuffles merge between waves); reduce runs once.
pub(crate) trait StageExec<'e> {
    /// Run one wave of map tasks (`tasks[k]` is the `(input, extent)`
    /// pair of global task index `base + k`), returning per-task results
    /// in wave order.
    fn run_map(&mut self, base: usize, tasks: &[(usize, usize)]) -> Vec<Result<MapTaskOut>>;

    /// Fetch/verify and reduce every partition, returning per-partition
    /// results in partition order.
    fn run_reduce(&mut self, shuffle: &[Mutex<ShuffleSlot>]) -> Vec<Result<ReduceOut>>;

    /// Release workers. The process backend shuts down and reaps every
    /// worker process here (and again on drop, so error paths leak no
    /// orphans).
    fn finish(&mut self) -> Result<()>;
}

/// Run one task's attempt loop (thread backend).
///
/// Each attempt consults the chaos plan (injecting any scheduled panic /
/// transient / delay, and passing a `corrupt` flag for the body to apply
/// to the data it reads), runs `body` under `catch_unwind`, and
/// classifies the outcome. Retryable errors back off per the retry policy
/// and try again; `TaskError::Fatal` and retry exhaustion escalate to
/// job-level errors. A `KillProcess` fault degrades to a transient kill
/// here: threads share the process, so a real SIGKILL would take the
/// whole cluster down rather than one worker.
pub(crate) fn run_attempts<T>(
    env: &StageEnv<'_>,
    phase: TaskPhase,
    task: usize,
    mut body: impl FnMut(usize, bool) -> std::result::Result<T, TaskError>,
) -> Result<T> {
    let config = env.config;
    let counters = env.counters;
    let stage = env.stage.name.as_str();
    let max_attempts = config.retry.max_attempts.max(1);
    let mut attempt = 0usize;
    loop {
        let mut fault = config.chaos.fault_for(stage, phase, task, attempt);
        if !config.integrity && fault == Some(FaultKind::Corrupt) {
            // With verification off, corruption would pass silently and
            // break repeatability; degrade it to a detectable kill.
            fault = Some(FaultKind::Transient);
        }
        if fault == Some(FaultKind::KillProcess) {
            fault = Some(FaultKind::Transient);
        }
        let started = Instant::now();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(FaultKind::Panic) => std::panic::panic_any(format!(
                    "{}: `{stage}` {phase} task {task} attempt {attempt}",
                    chaos::INJECTED_PANIC_MARKER
                )),
                Some(FaultKind::Transient) => {
                    return Err(TaskError::Transient {
                        message: format!("injected kill (attempt {attempt})"),
                    });
                }
                Some(FaultKind::Delay) => {
                    counters.add(&counters.delays, 1);
                    std::thread::sleep(config.chaos.delay());
                }
                _ => {}
            }
            body(attempt, fault == Some(FaultKind::Corrupt))
        }));
        let mut outcome = caught.unwrap_or_else(|payload| {
            Err(TaskError::Panicked {
                payload: pool::payload_str(payload.as_ref()).to_string(),
            })
        });
        // Post-hoc deadline: threads cannot be preempted, so a result that
        // lands after `attempt_timeout` is *discarded* and the attempt
        // charged as timed out — the same deadline discipline the process
        // backend enforces preemptively with SIGKILL.
        if let (Ok(_), Some(limit)) = (&outcome, config.retry.attempt_timeout) {
            let elapsed = started.elapsed();
            if elapsed > limit {
                outcome = Err(TaskError::TimedOut { elapsed });
            }
        }
        let err = match outcome {
            Ok(value) => return Ok(value),
            Err(TaskError::Fatal(e)) => return Err(*e),
            Err(e) => e,
        };
        counters.count_error(&err);
        attempt += 1;
        if attempt >= max_attempts {
            return Err(MrError::TaskExhausted {
                stage: stage.to_string(),
                phase,
                partition: task,
                attempts: attempt,
                last: Box::new(err),
            });
        }
        counters.add(&counters.retries, 1);
        let pause = config.retry.backoff_after(attempt - 1);
        if !pause.is_zero() {
            counters.add(&counters.backoff_ns, pause.as_nanos() as u64);
            std::thread::sleep(pause);
        }
    }
}

/// Fold one pool slot back into a job-level result. A panic that escaped
/// the attempt loop itself (a harness bug, since attempts run under
/// `catch_unwind`) is still contained by the pool and reported as an
/// exhausted task rather than aborting the process.
pub(crate) fn contained<T>(
    max_attempts: usize,
    stage: &str,
    phase: TaskPhase,
    task: usize,
    slot: std::result::Result<Result<T>, pool::Panicked>,
) -> Result<T> {
    match slot {
        Ok(inner) => inner,
        Err(p) => Err(MrError::TaskExhausted {
            stage: stage.to_string(),
            phase,
            partition: task,
            attempts: max_attempts.max(1),
            last: Box::new(TaskError::Panicked { payload: p.payload }),
        }),
    }
}

/// The in-process thread-pool backend (the frozen baseline).
#[derive(Debug)]
pub(crate) struct ThreadBackend {
    pool: WorkerPool,
}

impl ThreadBackend {
    pub fn new(threads: usize) -> ThreadBackend {
        ThreadBackend {
            pool: WorkerPool::new(threads),
        }
    }
}

impl Backend for ThreadBackend {
    fn begin<'e>(&'e self, env: &'e StageEnv<'e>) -> Result<Box<dyn StageExec<'e> + 'e>> {
        Ok(Box::new(ThreadExec {
            pool: &self.pool,
            env,
        }))
    }
}

struct ThreadExec<'e> {
    pool: &'e WorkerPool,
    env: &'e StageEnv<'e>,
}

impl<'e> StageExec<'e> for ThreadExec<'e> {
    fn run_map(&mut self, base: usize, tasks: &[(usize, usize)]) -> Vec<Result<MapTaskOut>> {
        let env = self.env;
        self.pool
            .run_caught(tasks.len(), |k| {
                let t = base + k;
                let (i, e) = tasks[k];
                run_attempts(env, TaskPhase::Map, t, |attempt, corrupt| {
                    crate::cluster::run_map_task(env, i, e, attempt, corrupt)
                })
            })
            .into_iter()
            .enumerate()
            .map(|(k, slot)| {
                contained(
                    env.config.retry.max_attempts,
                    &env.stage.name,
                    TaskPhase::Map,
                    base + k,
                    slot,
                )
            })
            .collect()
    }

    fn run_reduce(&mut self, shuffle: &[Mutex<ShuffleSlot>]) -> Vec<Result<ReduceOut>> {
        let env = self.env;
        self.pool
            .run_caught(env.stage.partitions, |p| {
                let mut slot = crate::cluster::lock_slot(&shuffle[p]);
                // Shuffle fetch: verify this partition's chunks against
                // their per-column (binary) or row-level (legacy) frames;
                // on a mismatch, rebuild them from the source extents and
                // retry. On success, decode into the reduce input forms —
                // one partition's worth of decoded data at a time, which
                // is what keeps budgeted runs out-of-core.
                let fetched = run_attempts(env, TaskPhase::Shuffle, p, |_, corrupt| {
                    crate::cluster::run_shuffle_fetch(env, p, corrupt, &mut slot)
                })?;
                drop(slot);
                // Reduce: the reducer is a pure function of the (now
                // verified) partition, so every retry reproduces the same
                // rows.
                run_attempts(env, TaskPhase::Reduce, p, |attempt, _| {
                    crate::cluster::run_reduce_task(env, p, attempt, &fetched)
                })
            })
            .into_iter()
            .enumerate()
            .map(|(p, slot)| {
                contained(
                    env.config.retry.max_attempts,
                    &env.stage.name,
                    TaskPhase::Reduce,
                    p,
                    slot,
                )
            })
            .collect()
    }

    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}
