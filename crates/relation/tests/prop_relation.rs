//! Property tests for the relational layer: the text codec must be
//! lossless for every representable row (DFS extents round-trip), and the
//! value order must be a proper total order (normalization depends on it).

use proptest::prelude::*;
use relation::schema::{ColumnType, Field};
use relation::{codec, hash, Row, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f64>().prop_map(Value::Double),
        // Strings including the characters the codec must escape.
        "[a-z\t\n\\\\']{0,12}".prop_map(|s| Value::str(&s)),
    ]
}

fn type_of(v: &Value) -> ColumnType {
    match v {
        Value::Null => ColumnType::Str, // Null stored under any type; use Str
        Value::Bool(_) => ColumnType::Bool,
        Value::Int(_) => ColumnType::Int,
        Value::Long(_) => ColumnType::Long,
        Value::Double(_) => ColumnType::Double,
        Value::Str(_) => ColumnType::Str,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips_any_row(values in prop::collection::vec(arb_value(), 1..8)) {
        // Finite doubles only: the text codec targets data rows, and the
        // engine never emits NaN/inf into datasets.
        prop_assume!(values.iter().all(|v| match v {
            Value::Double(d) => d.is_finite(),
            _ => true,
        }));
        let schema = Schema::new(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| Field::new(format!("c{i}"), type_of(v)))
                .collect(),
        );
        let row = Row::new(values);
        let encoded = codec::encode_row(&row);
        let decoded = codec::decode_row(&encoded, &schema).unwrap();
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn value_order_is_total_and_consistent(
        a in arb_value(),
        b in arb_value(),
        c in arb_value(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot-check the ≤ chain).
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Eq consistency with hashing.
        if a == b {
            prop_assert_eq!(hash::stable_hash(&a), hash::stable_hash(&b));
        }
    }

    #[test]
    fn key_hash_is_stable_under_row_extension(
        values in prop::collection::vec(arb_value(), 2..6),
        extra in arb_value(),
    ) {
        // Partition placement must depend only on the key columns.
        let row = Row::new(values.clone());
        let mut extended = values;
        extended.push(extra);
        let wider = Row::new(extended);
        prop_assert_eq!(hash::key_hash(&row, &[0, 1]), hash::key_hash(&wider, &[0, 1]));
    }
}
