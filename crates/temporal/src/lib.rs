//! A single-node temporal data stream management system (DSMS).
//!
//! This crate is the StreamInsight-style substrate of the TiMR reproduction
//! (paper §II-A). It implements the CEDR temporal algebra the paper's
//! framework relies on:
//!
//! - **Events** carry a payload [`relation::Row`] and a *lifetime*
//!   `[LE, RE)` — the validity interval over which the event contributes to
//!   output. Point events have `RE = LE + 1` (δ = one tick).
//! - A **stream** is a bag of events, viewed as a changing temporal relation.
//!   Operator semantics are defined on that relation and are therefore
//!   independent of physical processing order ("application time", paper
//!   §III-C.1) — the property that lets TiMR run the *same* query over
//!   offline files, restarted reducers, and live feeds with identical
//!   results.
//! - **Operators**: Filter, Project, AlterLifetime (sliding and hopping
//!   windows, shifts), snapshot Aggregate (Count/Sum/Min/Max/Avg),
//!   GroupApply, Union, Multicast (DAG fan-out), TemporalJoin, AntiSemiJoin,
//!   and user-defined windowed operators (UDOs).
//! - **CQ plans** are DAGs built with a fluent, LINQ-like [`plan::Query`]
//!   builder, and executed by the batch [`exec`] engine. The [`rt`] module
//!   provides an incremental, push-based executor for the same plans
//!   (paper §VII real-time readiness); both produce identical normalized
//!   output.
//!
//! Output canonicalization ([`stream::EventStream::normalize`]) — stable
//! sorting plus coalescing of adjacent equal-payload events — gives every
//! query a unique normal form, which is what the repeatability tests and
//! TiMR's temporal-partitioning correctness proof compare.

pub mod agg;
pub mod batch;
pub mod compiled;
pub mod error;
pub mod event;
pub mod exec;
pub mod expr;
pub mod key;
pub mod operators;
pub mod plan;
pub mod rt;
pub mod stream;
pub mod streamsql;
pub mod time;
pub mod udo;

pub use batch::EventBatch;
pub use compiled::CompiledExpr;
pub use error::{Result, TemporalError};
pub use event::Event;
pub use expr::{col, lit, Expr};
pub use plan::{LogicalPlan, NodeId, Query, StreamHandle};
pub use stream::EventStream;
pub use time::{Duration, Lifetime, Time, DAY, HOUR, MIN, SEC, TICK};
