//! Shared relational data model for the TiMR reproduction.
//!
//! Every layer of the system — the temporal DSMS, the map-reduce runtime,
//! TiMR's compiler, and the behavioral-targeting application — exchanges data
//! as [`Row`]s of dynamically-typed [`Value`]s described by a [`Schema`].
//! A dynamic model (rather than generic, statically-typed operators) is what
//! lets TiMR's optimizer and fragmenter manipulate plans by column name and
//! ship intermediate rows between map-reduce stages, mirroring how
//! SCOPE/StreamInsight interoperate in the paper.
//!
//! The crate also provides:
//! - a line-oriented text codec ([`codec`]) kept as the human-inspectable
//!   debug form and legacy read fallback for DFS "files";
//! - a framed binary columnar extent codec ([`extent`]) — per-column typed
//!   buffers, validity bitmaps, and FxHash integrity frames — which is the
//!   native representation at every stage boundary;
//! - dataset [`stats`] (cardinalities, distinct counts) consumed by the
//!   cost-based plan-annotation optimizer (paper §VI);
//! - stable 64-bit [`hash`]ing used for partitioning keys, so partition
//!   assignment is reproducible across runs and machines (a prerequisite for
//!   the paper's repeatability-under-failure argument, §III-C).

pub mod codec;
pub mod column;
pub mod error;
pub mod extent;
pub mod hash;
pub mod row;
pub mod schema;
pub mod stats;
pub mod value;

pub use column::{compact_indices, Column, ColumnBatch, ColumnData, Validity};
pub use error::{RelationError, Result};
pub use row::Row;
pub use schema::{ColumnType, Field, Schema};
pub use stats::{ColumnStats, DatasetStats};
pub use value::Value;
