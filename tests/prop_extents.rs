//! Property tests for the binary columnar extent format (PR 6).
//!
//! The extent codec is the native representation at every stage boundary —
//! DFS datasets, shuffle chunks, persisted files — so three properties
//! carry the whole design:
//!
//! 1. **Round-trip fidelity**: encode → decode reproduces the batch
//!    exactly for every column type, null-heavy data, and empty batches.
//! 2. **Canonical bytes**: re-encoding a decoded extent reproduces the
//!    original bytes bit-for-bit. Corruption recovery *rebuilds* extents
//!    from verified inputs and asserts byte-identity, so encoding must be
//!    a pure function of the logical content.
//! 3. **No silent decode**: flipping any single byte of an extent image is
//!    detected by the per-column/footer FxHash frames — and a cluster run
//!    whose shuffle chunks are corrupted by a [`ChaosPlan`] rebuilds them
//!    and still produces byte-identical output (paper §III-C.1).

use proptest::prelude::*;
use std::sync::Arc;
use timr_suite::mapreduce::job::IdentityReducer;
use timr_suite::mapreduce::{
    ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, Partitioner, RetryPolicy, Stage, TaskPhase,
};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{extent, ColumnBatch, Row, Schema, Value};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("B", ColumnType::Bool),
        Field::new("I", ColumnType::Int),
        Field::new("L", ColumnType::Long),
        Field::new("D", ColumnType::Double),
        Field::new("S", ColumnType::Str),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        any::<bool>(),
        -1000i32..1000,
        -1_000_000i64..1_000_000,
        -1e9f64..1e9,
        0u16..40,
        0u8..32,
    )
        .prop_map(|(b, i, l, d, s, nulls)| {
            let mut vals = vec![
                Value::Bool(b),
                Value::Int(i),
                Value::Long(l),
                Value::Double(d),
                Value::str(format!("user-{s}")),
            ];
            for (k, v) in vals.iter_mut().enumerate() {
                if nulls & (1 << k) != 0 {
                    *v = Value::Null;
                }
            }
            Row::new(vals)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode → decode is lossless for any mix of types and nulls,
    /// including the empty batch, and decoded extents re-encode to the
    /// exact original bytes (canonical form).
    #[test]
    fn extents_round_trip_and_are_canonical(rows in prop::collection::vec(arb_row(), 0..120)) {
        let batch = ColumnBatch::from_rows(&schema(), &rows).unwrap();
        let bytes = batch.to_extent_bytes().unwrap();
        extent::verify_extent(&bytes).unwrap();
        let (schema_back, n) = extent::extent_info(&bytes).unwrap();
        prop_assert_eq!(&schema_back, batch.schema());
        prop_assert_eq!(n, rows.len());
        let decoded = ColumnBatch::from_extent_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_rows(), rows);
        prop_assert_eq!(decoded.to_extent_bytes().unwrap(), bytes);
    }

    /// Any single random byte flip is detected — decode never silently
    /// returns wrong data.
    #[test]
    fn random_byte_flip_is_detected(
        rows in prop::collection::vec(arb_row(), 1..80),
        pos in 0usize..1_000_000,
    ) {
        let batch = ColumnBatch::from_rows(&schema(), &rows).unwrap();
        let mut bytes = batch.to_extent_bytes().unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= 0xFF;
        let verify = extent::verify_extent(&bytes);
        let decode = ColumnBatch::from_extent_bytes(&bytes);
        prop_assert!(
            verify.is_err() && decode.is_err(),
            "flip at byte {} of {} slipped through", i, bytes.len()
        );
    }
}

/// Exhaustive sweep: every byte position of a representative extent —
/// column buffers, validity bitmaps, dictionary pages, footer, hash
/// fields, and magic — is covered by some integrity check.
#[test]
fn every_byte_position_is_protected() {
    let rows: Vec<Row> = (0..64)
        .map(|i| {
            Row::new(vec![
                Value::Bool(i % 3 == 0),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                },
                Value::Long(i as i64 * 1_000_003),
                Value::Double(i as f64 * 0.25),
                Value::str(format!("kw{}", i % 5)), // dictionary-friendly
            ])
        })
        .collect();
    let batch = ColumnBatch::from_rows(&schema(), &rows).unwrap();
    let bytes = batch.to_extent_bytes().unwrap();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        assert!(
            ColumnBatch::from_extent_bytes(&corrupted).is_err(),
            "byte {i} of {} decoded despite corruption",
            bytes.len()
        );
    }
}

/// Truncation at any length is detected, never decoded as a shorter batch.
#[test]
fn every_truncation_is_detected() {
    let rows: Vec<Row> = (0..32)
        .map(|i| {
            Row::new(vec![
                Value::Bool(true),
                Value::Int(i),
                Value::Long(0),
                Value::Double(0.0),
                Value::str("u"),
            ])
        })
        .collect();
    let batch = ColumnBatch::from_rows(&schema(), &rows).unwrap();
    let bytes = batch.to_extent_bytes().unwrap();
    for len in 0..bytes.len() {
        assert!(
            ColumnBatch::from_extent_bytes(&bytes[..len]).is_err(),
            "truncation to {len} of {} decoded",
            bytes.len()
        );
    }
}

/// ChaosPlan corrupt targeting now lands on binary column buffers: the
/// cluster detects the damage via the per-column frames, rebuilds the
/// chunk from verified inputs, and the job output stays byte-identical to
/// a clean run — with and without a memory budget forcing spilled chunks.
#[test]
fn chaos_corruption_of_binary_extents_rebuilds_byte_identically() {
    let schema = Schema::timestamped(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("N", ColumnType::Long),
    ]);
    let rows: Vec<Row> = (0..400)
        .map(|i| {
            Row::new(vec![
                Value::Long(i),
                Value::str(format!("u{}", i % 11)),
                Value::Long(i * 3),
            ])
        })
        .collect();
    let input = || {
        Dataset::partitioned(
            schema.clone(),
            rows.chunks(100).map(|c| c.to_vec()).collect(),
        )
    };
    let stage = || {
        Stage::new(
            "copy",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            4,
            Arc::new(IdentityReducer),
        )
        .unwrap()
    };
    let run = |chaos: ChaosPlan, budget: Option<u64>| {
        let dfs = Dfs::new();
        dfs.put("in", input()).unwrap();
        let cluster = Cluster::with_config(ClusterConfig {
            threads: 4,
            chaos,
            retry: RetryPolicy::no_backoff(3),
            memory_budget_bytes: budget,
            ..ClusterConfig::default()
        });
        let stats = cluster.run_stage(&dfs, &stage()).unwrap();
        (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
    };
    let (clean, _) = run(ChaosPlan::none(), None);
    for budget in [None, Some(2048)] {
        let (recovered, stats) = run(
            ChaosPlan::none()
                .corrupt("copy", TaskPhase::Shuffle, 0)
                .corrupt("copy", TaskPhase::Shuffle, 3),
            budget,
        );
        assert_eq!(
            clean, recovered,
            "rebuild must be byte-identical (budget={budget:?})"
        );
        assert_eq!(stats.corruption_detected, 2, "budget={budget:?}");
        assert!(stats.task_retries >= 2, "budget={budget:?}");
    }
}
