//! Training-data generation (paper §IV-B.2, Fig 12).
//!
//! Two queries:
//!
//! - [`labels_query`] derives labelled click/non-click events: an
//!   impression is a *non-click* unless the same user clicked the same ad
//!   within `d` — implemented by AntiSemiJoining impressions against
//!   clicks whose lifetimes are extended `d` into the past.
//! - [`train_query`] additionally builds per-`(user, keyword)` sliding
//!   6-hour counts (the sparse UBP, refreshed on every activity) and
//!   TemporalJoins each labelled event with the profile *as of that
//!   instant*, emitting one row per (example, profile keyword).
//!
//! [`train_query`] ships with the optimized annotation of Example 3 — one
//! partitioning by `{UserId}` — and [`naive_annotation`] builds the
//! alternative that partitions UBP generation by `{UserId, Keyword}`
//! first, for the §V-B "Fragment Optimization" experiment.

use super::{log_payload, stream_id, BtQuery};
use crate::params::BtParams;
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Operator, Query, StreamHandle};
use timr::{Annotation, ExchangeKey};

fn labelled_stream(input: &StreamHandle, params: &BtParams) -> StreamHandle {
    let impressions = input
        .clone()
        .filter(col("StreamId").eq(lit(stream_id::IMPRESSION)));
    let clicks = input
        .clone()
        .filter(col("StreamId").eq(lit(stream_id::CLICK)));
    // A click at time c covers [c-d, c]: any impression it covers became a
    // click rather than a non-click.
    let clicks_back = clicks.clone().extend_back(params.click_window);
    let non_clicks =
        impressions.anti_semi_join(clicks_back, &[("UserId", "UserId"), ("KwAdId", "KwAdId")]);
    let label = |h: StreamHandle, value: i32| {
        h.project(vec![
            ("UserId".to_string(), col("UserId")),
            ("AdId".to_string(), col("KwAdId")),
            ("Label".to_string(), lit(value)),
        ])
    };
    label(non_clicks, 0).union(label(clicks, 1))
}

/// Build the labels query. Input: `clean_logs`; output payload:
/// `(UserId, AdId, Label)` point events.
pub fn labels_query(params: &BtParams) -> BtQuery {
    let q = Query::new();
    let input = q.source("clean_logs", log_payload());
    let out = labelled_stream(&input, params);
    let plan = q.build(vec![out]).unwrap();
    BtQuery {
        name: "GenTrainData/labels",
        annotation: exchange_all_source_edges(&plan, ExchangeKey::keys(&["UserId"])),
        plan,
    }
}

fn ubp_stream(input: &StreamHandle, params: &BtParams) -> StreamHandle {
    input
        .clone()
        .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
        .group_apply(&["UserId", "KwAdId"], |g| g.window(params.tau).count("Cnt"))
        .project(vec![
            ("UserId".to_string(), col("UserId")),
            ("Keyword".to_string(), col("KwAdId")),
            ("Cnt".to_string(), col("Cnt")),
        ])
}

/// Build the training-rows query. Input: `clean_logs`; output payload:
/// `(UserId, AdId, Label, Keyword, Cnt)` — one point event per
/// (labelled example, profile keyword).
pub fn train_query(params: &BtParams) -> BtQuery {
    let q = Query::new();
    let input = q.source("clean_logs", log_payload());
    let labels = labelled_stream(&input, params);
    let ubp = ubp_stream(&input, params);
    let joined = labels.temporal_join(ubp, &[("UserId", "UserId")], None);
    let out = joined.project(vec![
        ("UserId".to_string(), col("UserId")),
        ("AdId".to_string(), col("AdId")),
        ("Label".to_string(), col("Label")),
        ("Keyword".to_string(), col("Keyword")),
        ("Cnt".to_string(), col("Cnt")),
    ]);
    let plan = q.build(vec![out]).unwrap();
    BtQuery {
        name: "GenTrainData",
        annotation: exchange_all_source_edges(&plan, ExchangeKey::keys(&["UserId"])),
        plan,
    }
}

/// The naive Example 3 annotation for [`train_query`]: UBP generation is
/// partitioned by `{UserId, KwAdId}` in its own fragment, whose output is
/// then repartitioned by `{UserId}` for the join — two shuffles of the
/// keyword data instead of one.
pub fn naive_annotation(plan: &LogicalPlan) -> Annotation {
    // The UBP GroupApply and the filter feeding it.
    let ga = plan
        .nodes()
        .iter()
        .position(|n| matches!(&n.op, Operator::GroupApply { keys, .. } if keys.len() == 2))
        .expect("UBP group-apply exists");
    let ubp_filter = plan.node(ga).inputs[0];
    // The project above the GroupApply (renames KwAdId -> Keyword), whose
    // output feeds the join's right input.
    let ubp_project = plan
        .consumers(ga)
        .into_iter()
        .find(|&c| matches!(plan.node(c).op, Operator::Project { .. }))
        .expect("UBP rename project exists");
    let join = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::TemporalJoin { .. }))
        .expect("train join exists");
    let join_right_idx = plan
        .node(join)
        .inputs
        .iter()
        .position(|&i| i == ubp_project)
        .expect("project feeds the join");

    let mut ann = Annotation::none()
        // UBP fragment partitioned by the full composite key.
        .exchange(ubp_filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]))
        // ...then repartitioned by {UserId} for the join.
        .exchange(join, join_right_idx, ExchangeKey::keys(&["UserId"]));
    // The labels side still needs {UserId} partitioning from the raw log.
    for (id, node) in plan.nodes().iter().enumerate() {
        if id == ubp_filter {
            continue;
        }
        for (idx, &child) in node.inputs.iter().enumerate() {
            if matches!(plan.node(child).op, Operator::Source { .. }) {
                ann = ann.exchange(id, idx, ExchangeKey::keys(&["UserId"]));
            }
        }
    }
    ann
}

/// Annotate every edge that reads a `Source` with `key` (the "partition
/// once" pattern: a single fragment keyed by `key`).
fn exchange_all_source_edges(plan: &LogicalPlan, key: ExchangeKey) -> Annotation {
    let mut ann = Annotation::none();
    for (id, node) in plan.nodes().iter().enumerate() {
        for (idx, &child) in node.inputs.iter().enumerate() {
            if matches!(plan.node(child).op, Operator::Source { .. }) {
                ann = ann.exchange(id, idx, key.clone());
            }
        }
    }
    ann
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{row, Value};
    use temporal::exec::{bindings, execute_single};
    use temporal::{Event, EventStream, HOUR, MIN};

    fn event(t: i64, sid: i32, user: &str, kw: &str) -> Event {
        Event::point(t, row![sid, user, kw])
    }

    fn sample_log() -> EventStream {
        EventStream::new(
            log_payload(),
            vec![
                // u1 searches cars, then sees adA and clicks it.
                event(HOUR, 2, "u1", "cars"),
                event(HOUR + 10 * MIN, 0, "u1", "adA"),
                event(HOUR + 12 * MIN, 1, "u1", "adA"),
                // u1 sees adB and does not click.
                event(HOUR + 30 * MIN, 0, "u1", "adB"),
                // u2 sees adA with no profile and doesn't click.
                event(2 * HOUR, 0, "u2", "adA"),
                // u1 sees adA again much later: the cars search has
                // expired from the 6h profile by then.
                event(10 * HOUR, 0, "u1", "adA"),
            ],
        )
    }

    #[test]
    fn labels_distinguish_clicks_from_non_clicks() {
        let btq = labels_query(&BtParams::default());
        let out = execute_single(&btq.plan, &bindings(vec![("clean_logs", sample_log())]))
            .unwrap()
            .normalize();
        let mut labelled: Vec<(i64, String, String, i32)> = out
            .events()
            .iter()
            .map(|e| {
                (
                    e.start(),
                    e.payload.get(0).as_str().unwrap().to_string(),
                    e.payload.get(1).as_str().unwrap().to_string(),
                    e.payload.get(2).as_int().unwrap(),
                )
            })
            .collect();
        labelled.sort();
        assert_eq!(
            labelled,
            vec![
                (HOUR + 12 * MIN, "u1".into(), "adA".into(), 1), // the click
                (HOUR + 30 * MIN, "u1".into(), "adB".into(), 0),
                (2 * HOUR, "u2".into(), "adA".into(), 0),
                (10 * HOUR, "u1".into(), "adA".into(), 0),
            ],
            "clicked impression must NOT appear as a non-click"
        );
    }

    #[test]
    fn train_rows_attach_profile_as_of_impression() {
        let btq = train_query(&BtParams::default());
        let out = execute_single(&btq.plan, &bindings(vec![("clean_logs", sample_log())]))
            .unwrap()
            .normalize();
        // Only u1's two early examples have "cars" in the 6h profile; the
        // 10-hour impression and u2's example have empty profiles (no
        // rows — inner join).
        let rows: Vec<(i64, Vec<Value>)> = out
            .events()
            .iter()
            .map(|e| (e.start(), e.payload.values().to_vec()))
            .collect();
        assert_eq!(rows.len(), 2, "rows: {rows:?}");
        for (t, vals) in &rows {
            assert!(*t < 2 * HOUR);
            assert_eq!(vals[0], Value::str("u1"));
            assert_eq!(vals[3], Value::str("cars"));
            assert_eq!(vals[4], Value::Long(1));
        }
        // The click example carries Label=1, the others 0.
        let labels: Vec<i32> = rows.iter().map(|(_, v)| v[2].as_int().unwrap()).collect();
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 1);
    }

    #[test]
    fn ubp_counts_accumulate_within_window() {
        // Two searches of the same keyword within τ: the second example
        // sees Cnt=2.
        let log = EventStream::new(
            log_payload(),
            vec![
                event(HOUR, 2, "u1", "cars"),
                event(HOUR + 5 * MIN, 2, "u1", "cars"),
                event(HOUR + 10 * MIN, 0, "u1", "adA"),
            ],
        );
        let btq = train_query(&BtParams::default());
        let out = execute_single(&btq.plan, &bindings(vec![("clean_logs", log)]))
            .unwrap()
            .normalize();
        assert_eq!(out.len(), 1);
        assert_eq!(out.events()[0].payload.get(4), &Value::Long(2));
    }

    #[test]
    fn both_annotations_validate_and_fragment() {
        let params = BtParams::default();
        let btq = train_query(&params);
        btq.annotation.validate(&btq.plan).unwrap();
        let optimized = timr::fragment::fragment(&btq.plan, &btq.annotation).unwrap();
        assert_eq!(optimized.len(), 1, "optimized plan is one fragment");

        let naive = naive_annotation(&btq.plan);
        naive.validate(&btq.plan).unwrap();
        let frags = timr::fragment::fragment(&btq.plan, &naive).unwrap();
        assert_eq!(frags.len(), 2, "naive plan has a separate UBP fragment");
        assert!(frags.iter().any(|f| f.key
            == timr::fragment::FragmentKey::Keys(vec![
                "UserId".to_string(),
                "KwAdId".to_string()
            ])));
    }

    #[test]
    fn naive_and_optimized_agree_on_results() {
        use mapreduce::{Cluster, Dataset, Dfs};
        use timr::{EventEncoding, TimrJob};
        let params = BtParams::default();
        let btq = train_query(&params);

        let rows: Vec<relation::Row> = sample_log()
            .events()
            .iter()
            .map(|e| {
                let mut v = vec![Value::Long(e.start())];
                v.extend(e.payload.values().iter().cloned());
                relation::Row::new(v)
            })
            .collect();
        let run = |ann: Annotation, name: &str| {
            let dfs = Dfs::new();
            dfs.put(
                "clean_logs",
                Dataset::single(
                    EventEncoding::Point.dataset_schema(&log_payload()),
                    rows.clone(),
                ),
            )
            .unwrap();
            let out = TimrJob::new(name, btq.plan.clone())
                .with_annotation(ann)
                .with_machines(4)
                .run(&dfs, &Cluster::new())
                .unwrap();
            out.stream(&dfs).unwrap()
        };
        let a = run(btq.annotation.clone(), "opt");
        let b = run(naive_annotation(&btq.plan), "naive");
        assert!(a.same_relation(&b));
    }
}
