//! Microbenchmarks for the temporal operators — the engine-level costs
//! behind every TiMR reducer (paper §II-A: "the efficient implementation
//! of aggregation and temporal join in StreamInsight consists of more than
//! 3000 lines of high-level code each"; these benches are why that
//! engineering is worth embedding rather than rewriting per job).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relation::row;
use relation::schema::{ColumnType, Field};
use relation::Schema;
use temporal::exec::{bindings, execute_single, execute_single_with_mode, ExecMode};
use temporal::expr::{col, lit};
use temporal::plan::LogicalPlan;
use temporal::{Event, EventStream, Query};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("V", ColumnType::Long),
    ])
}

fn point_stream(n: usize, users: usize) -> EventStream {
    EventStream::new(
        schema(),
        (0..n)
            .map(|i| Event::point(i as i64, row![format!("u{}", i % users), i as i64]))
            .collect(),
    )
}

fn bench_windowed_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_count");
    for n in [1_000usize, 10_000, 50_000] {
        let input = point_stream(n, 100);
        let q = Query::new();
        let out = q
            .source("in", schema())
            .group_apply(&["UserId"], |g| g.window(500).count("N"));
        let plan = q.build(vec![out]).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| execute_single(&plan, &bindings(vec![("in", input.clone())])).unwrap())
        });
    }
    group.finish();
}

fn bench_temporal_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal_join");
    for n in [1_000usize, 10_000] {
        // Points probing an interval synopsis — the UBP-join shape.
        let left = point_stream(n, 100);
        let right = EventStream::new(
            schema(),
            (0..n / 2)
                .map(|i| {
                    Event::interval(
                        (i * 2) as i64,
                        (i * 2 + 600) as i64,
                        row![format!("u{}", i % 100), i as i64],
                    )
                })
                .collect(),
        );
        let q = Query::new();
        let l = q.source("l", schema());
        let r = q.source("r", schema());
        let out = l.temporal_join(r, &[("UserId", "UserId")], None);
        let plan = q.build(vec![out]).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                execute_single(
                    &plan,
                    &bindings(vec![("l", left.clone()), ("r", right.clone())]),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_anti_semi_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("anti_semi_join");
    let n = 10_000usize;
    let left = point_stream(n, 100);
    let right = EventStream::new(
        schema(),
        (0..200)
            .map(|i| Event::interval(i * 50, i * 50 + 40, row![format!("u{}", i % 100), 0i64]))
            .collect(),
    );
    let q = Query::new();
    let l = q.source("l", schema());
    let r = q.source("r", schema());
    let out = l.anti_semi_join(r, &[("UserId", "UserId")]);
    let plan = q.build(vec![out]).unwrap();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("points_minus_periods", |b| {
        b.iter(|| {
            execute_single(
                &plan,
                &bindings(vec![("l", left.clone()), ("r", right.clone())]),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalize");
    let n = 20_000usize;
    let stream = EventStream::new(
        schema(),
        (0..n)
            .map(|i| {
                Event::interval(
                    (i % 1000) as i64,
                    (i % 1000 + 10) as i64,
                    row![format!("u{}", i % 50), 0i64],
                )
            })
            .collect(),
    );
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("coalesce_20k", |b| b.iter(|| stream.normalize()));
    group.finish();
}

// ---------------------------------------------------------------------------
// Interpreted vs compiled vs columnar vs fused: the PR 2 hot-path
// comparison plus the PR 4 vectorized batch path and the PR 7 single-pass
// fused fragments. Each plan runs through all executor modes over the same
// 100k-event input; input streams are Arc-backed, so the per-iteration
// clone is O(1).
// ---------------------------------------------------------------------------

const MODE_EVENTS: usize = 100_000;

fn mode_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("Val", ColumnType::Long),
    ])
}

fn mode_stream(n: usize) -> EventStream {
    EventStream::new(
        mode_schema(),
        (0..n)
            .map(|i| {
                Event::point(
                    i as i64,
                    row![(1 + i % 2) as i32, format!("u{}", i % 500), (i as i64) * 7],
                )
            })
            .collect(),
    )
}

fn bench_both_modes(
    c: &mut Criterion,
    name: &str,
    plan: &LogicalPlan,
    sources: &temporal::exec::Bindings,
) {
    let mut group = c.benchmark_group(name);
    group.throughput(Throughput::Elements(MODE_EVENTS as u64));
    for (label, mode) in [
        ("interpreted", ExecMode::Interpreted),
        ("compiled", ExecMode::Compiled),
        ("columnar", ExecMode::Columnar),
        ("fused", ExecMode::Fused),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| execute_single_with_mode(plan, sources, mode).unwrap())
        });
    }
    group.finish();
}

fn bench_modes_filter(c: &mut Criterion) {
    let q = Query::new();
    let out = q
        .source("in", mode_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Val").ge(lit(0))));
    let plan = q.build(vec![out]).unwrap();
    let sources = bindings(vec![("in", mode_stream(MODE_EVENTS))]);
    bench_both_modes(c, "mode_filter", &plan, &sources);
}

fn bench_modes_project(c: &mut Criterion) {
    let q = Query::new();
    let out = q.source("in", mode_schema()).project(vec![
        ("UserId".into(), col("UserId")),
        ("Score".into(), col("Val").mul(lit(3)).add(col("StreamId"))),
        (
            "Norm".into(),
            col("Val").mul(lit(100)).div(col("Val").add(lit(60))),
        ),
    ]);
    let plan = q.build(vec![out]).unwrap();
    let sources = bindings(vec![("in", mode_stream(MODE_EVENTS))]);
    bench_both_modes(c, "mode_project", &plan, &sources);
}

fn bench_modes_temporal_join(c: &mut Criterion) {
    let q = Query::new();
    let l = q.source("l", mode_schema());
    let r = q.source("r", mode_schema());
    let out = l.temporal_join(
        r,
        &[("UserId", "UserId")],
        Some(col("Val").ge(col("Val.r"))),
    );
    let plan = q.build(vec![out]).unwrap();
    let right = EventStream::new(
        mode_schema(),
        (0..MODE_EVENTS / 10)
            .map(|i| {
                Event::interval(
                    (i * 10) as i64,
                    (i * 10 + 600) as i64,
                    row![1i32, format!("u{}", i % 500), i as i64],
                )
            })
            .collect(),
    );
    let sources = bindings(vec![("l", mode_stream(MODE_EVENTS)), ("r", right)]);
    bench_both_modes(c, "mode_temporal_join", &plan, &sources);
}

fn bench_modes_aggregate(c: &mut Criterion) {
    let q = Query::new();
    let out = q.source("in", mode_schema()).window(500).aggregate(vec![
        ("N".into(), temporal::agg::AggExpr::Count),
        ("S".into(), temporal::agg::AggExpr::Sum(col("Val"))),
        ("A".into(), temporal::agg::AggExpr::Avg(col("Val"))),
    ]);
    let plan = q.build(vec![out]).unwrap();
    let sources = bindings(vec![("in", mode_stream(MODE_EVENTS))]);
    bench_both_modes(c, "mode_aggregate", &plan, &sources);
}

fn bench_factor_window_combine(c: &mut Criterion) {
    // PR 8 factor-window rewrite: Q harmonic hopping-window counts over the
    // same keyed stream, executed verbatim (every query re-buckets the raw
    // events) vs after `factor_windows` (one GCD-hop factor window feeds
    // per-query combiners that merge partials).
    let mut group = c.benchmark_group("factor_window_combine");
    let n = 20_000usize;
    let input = point_stream(n, 100);
    for queries in [2usize, 8] {
        let q = Query::new();
        let src = q.source("in", schema());
        let outs: Vec<_> = (0..queries)
            .map(|i| {
                let hop = 100 * (1 + (i % 3) as i64);
                src.clone()
                    .group_apply(&["UserId"], move |g| g.hop_window(hop, 1200).count("N"))
            })
            .collect();
        let plan = q.build(outs).unwrap();
        let (factored, groups) = temporal::plan::factor_windows(&plan).unwrap();
        assert_eq!(groups, 1, "harmonic cadences must form one factor group");
        group.throughput(Throughput::Elements((n * queries) as u64));
        group.bench_with_input(BenchmarkId::new("unfactored", queries), &plan, |b, p| {
            b.iter(|| temporal::exec::execute(p, &bindings(vec![("in", input.clone())])).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("factored", queries), &factored, |b, p| {
            b.iter(|| temporal::exec::execute(p, &bindings(vec![("in", input.clone())])).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_windowed_count, bench_temporal_join, bench_anti_semi_join, bench_normalize,
        bench_modes_filter, bench_modes_project, bench_modes_temporal_join, bench_modes_aggregate,
        bench_factor_window_combine
);
criterion_main!(benches);
