//! Fig 21: keyword elimination and CTR — click-through rates over test
//! example subsets selected by positive/negative keyword presence.
//!
//! Keyword sets come from the z-test on *training* data at 80% confidence
//! (z > 1.28, the paper's setting); CTR and lift are measured on the
//! held-out test split. The paper's shape: subsets with a positive
//! keyword lift CTR substantially; only-negative subsets depress it.

use super::Ctx;
use crate::table::{f3, pct, Table};
use bt::eval::{by_ad, keyword_set_lift, scores_from_examples};
use rustc_hash::FxHashSet;

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let (train, test) = ctx.split();
    let scores = scores_from_examples(&train, params.min_support, params.min_example_support);
    let test_by_ad = by_ad(&test);

    let mut out = String::new();
    for ad in ["laptop", "cellphone"] {
        let positive: FxHashSet<String> = scores
            .iter()
            .filter(|s| s.ad == ad && s.z > 1.28)
            .map(|s| s.keyword.clone())
            .collect();
        let negative: FxHashSet<String> = scores
            .iter()
            .filter(|s| s.ad == ad && s.z < -1.28)
            .map(|s| s.keyword.clone())
            .collect();
        let Some(test_examples) = test_by_ad.get(ad) else {
            out.push_str(&format!("{ad}: no test examples\n"));
            continue;
        };
        let rows = keyword_set_lift(test_examples, &positive, &negative);
        let mut table = Table::new(&["Examples chosen", "#click", "#impr", "CTR", "Lift (%)"]);
        for r in &rows {
            table.row(vec![
                r.subset.to_string(),
                r.clicks.to_string(),
                r.examples.to_string(),
                f3(r.ctr),
                pct(r.lift_pct),
            ]);
        }
        out.push_str(&format!(
            "Fig 21 — {ad} ad class ({} positive / {} negative keywords at |z| > 1.28):\n{}\n",
            positive.len(),
            negative.len(),
            table.render()
        ));
    }
    out
}
