//! Union: bag merge of same-schema streams (paper §II-A.2).

use crate::error::{Result, TemporalError};
use crate::stream::EventStream;

/// Merge all inputs into one stream, consuming them (uniquely-owned inputs
/// move their events, no copies). Schemas must be identical.
pub fn union(inputs: Vec<EventStream>) -> Result<EventStream> {
    let mut it = inputs.into_iter();
    let mut out = it
        .next()
        .ok_or_else(|| TemporalError::Plan("union of zero streams".into()))?;
    for s in it {
        out.merge(s)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("X", ColumnType::Long)])
    }

    #[test]
    fn merges_event_bags() {
        let a = EventStream::new(schema(), vec![Event::point(1, row![1i64])]);
        let b = EventStream::new(schema(), vec![Event::point(2, row![2i64])]);
        let c = EventStream::new(schema(), vec![Event::point(3, row![3i64])]);
        let out = union(vec![a, b, c]).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = EventStream::empty(schema());
        let b = EventStream::empty(Schema::new(vec![Field::new("Y", ColumnType::Long)]));
        assert!(union(vec![a, b]).is_err());
    }
}
