//! Project: stateless payload transformation (paper §II-A.2).

use crate::error::Result;
use crate::event::Event;
use crate::expr::Expr;
use crate::stream::EventStream;
use relation::{Field, Row, Schema};

/// Recompute each payload from `exprs`; lifetimes pass through.
pub fn project(input: &EventStream, exprs: &[(String, Expr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    let mut events = Vec::with_capacity(input.len());
    for e in input.events() {
        let mut values = Vec::with_capacity(exprs.len());
        for (_, expr) in exprs {
            values.push(expr.eval(in_schema, &e.payload)?);
        }
        events.push(Event::new(e.lifetime, Row::new(values)));
    }
    Ok(EventStream::new(out_schema, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use relation::schema::ColumnType;
    use relation::{row, Value};

    #[test]
    fn computes_new_columns() {
        let schema = Schema::new(vec![
            Field::new("Clicks", ColumnType::Long),
            Field::new("Imps", ColumnType::Long),
        ]);
        let input = EventStream::new(schema, vec![Event::point(0, row![3i64, 12i64])]);
        let exprs = vec![
            (
                "Ctr".to_string(),
                col("Clicks").mul(lit(1.0f64)).div(col("Imps")),
            ),
            ("Imps".to_string(), col("Imps")),
        ];
        let out = project(&input, &exprs).unwrap();
        assert_eq!(out.schema().names(), vec!["Ctr", "Imps"]);
        assert_eq!(out.events()[0].payload.get(0), &Value::Double(0.25));
    }

    #[test]
    fn reorders_and_drops_columns() {
        let schema = Schema::new(vec![
            Field::new("A", ColumnType::Long),
            Field::new("B", ColumnType::Str),
        ]);
        let input = EventStream::new(schema, vec![Event::point(0, row![1i64, "x"])]);
        let out = project(&input, &[("B".to_string(), col("B"))]).unwrap();
        assert_eq!(out.schema().names(), vec!["B"]);
        assert_eq!(out.events()[0].payload, row!["x"]);
    }
}
