//! TemporalJoin: correlate two streams (paper §II-A.2, Fig 4 right).
//!
//! Outputs the relational join of left and right events whose equality keys
//! match, whose lifetimes intersect, and (optionally) whose concatenated
//! payload satisfies a residual predicate. The output lifetime is the
//! intersection of the two input lifetimes.
//!
//! The common BT pattern — point events on the left joined against a synopsis
//! of interval events on the right (profiles, model weights) — falls out of
//! the general interval intersection: a point `[t, t+1)` intersects exactly
//! the right events whose lifetimes contain `t`.

use crate::error::{Result, TemporalError};
use crate::event::Event;
use crate::expr::Expr;
use crate::stream::EventStream;
use relation::Value;
use rustc_hash::FxHashMap;

/// Join `left` and `right` on `keys` (pairs of column names) with an
/// optional residual predicate over the concatenated payload.
pub fn temporal_join(
    left: &EventStream,
    right: &EventStream,
    keys: &[(String, String)],
    residual: Option<&Expr>,
) -> Result<EventStream> {
    let lschema = left.schema();
    let rschema = right.schema();
    let out_schema = lschema.join(rschema);

    let lkeys: Vec<usize> = keys
        .iter()
        .map(|(l, _)| lschema.index_of(l).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<usize> = keys
        .iter()
        .map(|(_, r)| rschema.index_of(r).map_err(TemporalError::from))
        .collect::<Result<Vec<_>>>()?;

    // Hash the right side by key; sort each bucket by LE for early exit.
    let mut right_index: FxHashMap<Vec<Value>, Vec<&Event>> = FxHashMap::default();
    for e in right.events() {
        let key: Vec<Value> = rkeys.iter().map(|&i| e.payload.get(i).clone()).collect();
        right_index.entry(key).or_default().push(e);
    }
    for bucket in right_index.values_mut() {
        bucket.sort_by_key(|e| (e.lifetime.start, e.lifetime.end));
    }

    let mut out = Vec::new();
    for le in left.events() {
        let key: Vec<Value> = lkeys.iter().map(|&i| le.payload.get(i).clone()).collect();
        let Some(bucket) = right_index.get(&key) else {
            continue;
        };
        for re in bucket {
            if re.lifetime.start >= le.lifetime.end {
                break; // bucket sorted by LE: nothing later can intersect
            }
            let Some(lifetime) = le.lifetime.intersect(&re.lifetime) else {
                continue;
            };
            let payload = le.payload.concat(&re.payload);
            if let Some(pred) = residual {
                if !pred.eval_predicate(&out_schema, &payload)? {
                    continue;
                }
            }
            out.push(Event::new(lifetime, payload));
        }
    }
    Ok(EventStream::new(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn left_stream() -> EventStream {
        let schema = Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("AdId", ColumnType::Str),
        ]);
        EventStream::new(
            schema,
            vec![
                Event::point(5, row!["u1", "adA"]),
                Event::point(30, row!["u1", "adB"]),
                Event::point(7, row!["u2", "adA"]),
            ],
        )
    }

    fn right_stream() -> EventStream {
        // Interval "profile" events per user.
        let schema = Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Kw", ColumnType::Str),
        ]);
        EventStream::new(
            schema,
            vec![
                Event::interval(0, 10, row!["u1", "cars"]),
                Event::interval(20, 40, row!["u1", "movies"]),
                Event::interval(0, 3, row!["u2", "games"]),
            ],
        )
    }

    #[test]
    fn point_probe_hits_covering_intervals_only() {
        let out = temporal_join(
            &left_stream(),
            &right_stream(),
            &[("UserId".to_string(), "UserId".to_string())],
            None,
        )
        .unwrap();
        let n = out.normalize();
        // u1@5 joins cars[0,10); u1@30 joins movies[20,40); u2@7 misses.
        assert_eq!(n.len(), 2);
        assert_eq!(n.events()[0].payload, row!["u1", "adA", "u1", "cars"]);
        assert_eq!(n.events()[0].lifetime, crate::time::Lifetime::point(5));
        assert_eq!(n.events()[1].payload, row!["u1", "adB", "u1", "movies"]);
    }

    #[test]
    fn output_lifetime_is_intersection() {
        let s = Schema::new(vec![Field::new("K", ColumnType::Str)]);
        let a = EventStream::new(s.clone(), vec![Event::interval(0, 10, row!["k"])]);
        let b = EventStream::new(s, vec![Event::interval(5, 20, row!["k"])]);
        let out = temporal_join(&a, &b, &[("K".to_string(), "K".to_string())], None).unwrap();
        assert_eq!(out.events()[0].lifetime, crate::time::Lifetime::new(5, 10));
        assert_eq!(out.schema().names(), vec!["K", "K.r"]);
    }

    #[test]
    fn residual_predicate_filters_pairs() {
        // Paper Fig 4 right: join where left.Power < right.Power + 100.
        let s = Schema::new(vec![
            Field::new("Id", ColumnType::Str),
            Field::new("Power", ColumnType::Long),
        ]);
        let a = EventStream::new(s.clone(), vec![Event::interval(0, 10, row!["m", 250i64])]);
        let b = EventStream::new(
            s,
            vec![
                Event::interval(0, 10, row!["m", 100i64]),
                Event::interval(0, 10, row!["m", 200i64]),
            ],
        );
        let out = temporal_join(
            &a,
            &b,
            &[("Id".to_string(), "Id".to_string())],
            Some(&col("Power").lt(col("Power.r").add(lit(100i64)))),
        )
        .unwrap();
        // 250 < 100+100 fails; 250 < 200+100 passes.
        assert_eq!(out.len(), 1);
        assert_eq!(out.events()[0].payload, row!["m", 250i64, "m", 200i64]);
    }

    #[test]
    fn no_keys_means_cross_correlation() {
        let s = Schema::new(vec![Field::new("A", ColumnType::Long)]);
        let t = Schema::new(vec![Field::new("B", ColumnType::Long)]);
        let a = EventStream::new(s, vec![Event::interval(0, 5, row![1i64])]);
        let b = EventStream::new(t, vec![Event::interval(3, 9, row![2i64])]);
        let out = temporal_join(&a, &b, &[], None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.events()[0].lifetime, crate::time::Lifetime::new(3, 5));
    }
}
