//! Cardinality and cost estimation for annotated plans (paper §VI, "Cost
//! Estimation").
//!
//! Estimates follow textbook heuristics driven by source
//! [`relation::DatasetStats`]: row counts and per-column distinct counts
//! propagate bottom-up with simple selectivity factors. Precision is not
//! the point — the optimizer only needs the estimates to *rank* exchange
//! placements (one repartitioning by `{UserId}` vs. two repartitionings,
//! Example 3), and ranking is robust to crude selectivities.

use relation::stats::Histogram;
use relation::DatasetStats;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use temporal::expr::{BinOp, Expr};
use temporal::plan::{FusedStep, LogicalPlan, NodeId, Operator};

/// Estimated properties of one node's output stream.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated event (row) count.
    pub rows: f64,
    /// Estimated row width in bytes.
    pub width: f64,
    /// Estimated distinct count per column.
    pub distinct: BTreeMap<String, f64>,
    /// Histograms inherited from source statistics (best-effort: carried
    /// through row-preserving operators, dropped where shapes change).
    pub histograms: BTreeMap<String, Histogram>,
}

impl Estimate {
    /// Estimated distinct values of a composite key (independence
    /// assumption, clamped by row count).
    pub fn key_distinct(&self, columns: &[String]) -> f64 {
        let mut product = 1.0f64;
        for c in columns {
            product *= self.distinct.get(c).copied().unwrap_or(1.0).max(1.0);
        }
        product.min(self.rows.max(1.0))
    }

    /// Estimated bytes in the stream.
    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }
}

/// Default filter selectivity when the predicate is not an equality.
const DEFAULT_FILTER_SELECTIVITY: f64 = 0.5;

/// Compute per-node estimates for a plan given source statistics.
pub fn estimate_plan(
    plan: &LogicalPlan,
    source_stats: &BTreeMap<String, DatasetStats>,
) -> FxHashMap<NodeId, Estimate> {
    let mut out: FxHashMap<NodeId, Estimate> = FxHashMap::default();
    for id in plan.topo_order() {
        let node = plan.node(id);
        let est = match &node.op {
            Operator::Source { name, schema } => match source_stats.get(name) {
                Some(stats) => Estimate {
                    rows: stats.rows as f64,
                    width: stats.avg_row_width.max(1.0),
                    distinct: schema
                        .fields()
                        .iter()
                        .map(|f| {
                            (
                                f.name.clone(),
                                stats.distinct_of(&f.name).unwrap_or(1) as f64,
                            )
                        })
                        .collect(),
                    histograms: schema
                        .fields()
                        .iter()
                        .filter_map(|f| {
                            stats
                                .histogram_of(&f.name)
                                .map(|h| (f.name.clone(), h.clone()))
                        })
                        .collect(),
                },
                None => Estimate {
                    rows: 1_000.0,
                    width: 64.0,
                    distinct: schema
                        .fields()
                        .iter()
                        .map(|f| (f.name.clone(), 100.0))
                        .collect(),
                    histograms: BTreeMap::new(),
                },
            },
            Operator::GroupInput { schema } => Estimate {
                rows: 1_000.0,
                width: 64.0,
                distinct: schema
                    .fields()
                    .iter()
                    .map(|f| (f.name.clone(), 100.0))
                    .collect(),
                histograms: BTreeMap::new(),
            },
            Operator::Filter { predicate } => {
                let input = &out[&node.inputs[0]];
                let sel = filter_selectivity(predicate, input);
                scale_rows(input, sel)
            }
            Operator::Project { exprs } => project_estimate(exprs, &out[&node.inputs[0]]),
            Operator::AlterLifetime { .. } => out[&node.inputs[0]].clone(),
            // A fused fragment estimates as its steps run in sequence.
            Operator::FusedFragment { steps } => {
                let mut est = out[&node.inputs[0]].clone();
                for step in steps {
                    est = match step {
                        FusedStep::Filter { predicate } => {
                            let sel = filter_selectivity(predicate, &est);
                            scale_rows(&est, sel)
                        }
                        FusedStep::Project { exprs } => project_estimate(exprs, &est),
                        FusedStep::AlterLifetime { .. } => est,
                    };
                }
                est
            }
            Operator::Aggregate { aggs } => {
                let input = &out[&node.inputs[0]];
                Estimate {
                    // Snapshot aggregation emits roughly one event per
                    // active-set change: ~2 endpoints per input event,
                    // minus coalescing.
                    rows: input.rows * 1.5,
                    width: 8.0 * aggs.len() as f64,
                    distinct: aggs
                        .iter()
                        .map(|(n, _)| (n.clone(), input.rows.sqrt().max(1.0)))
                        .collect(),
                    histograms: BTreeMap::new(),
                }
            }
            Operator::GroupApply { keys, subplan } => {
                let input = &out[&node.inputs[0]];
                // Sub-plans in the BT workloads are windowed aggregations:
                // output cardinality tracks input cardinality.
                let rows = input.rows * 1.5;
                let sub_schema = subplan.schema_of(subplan.roots()[0]);
                let mut distinct: BTreeMap<String, f64> = keys
                    .iter()
                    .map(|k| (k.clone(), input.distinct.get(k).copied().unwrap_or(1.0)))
                    .collect();
                for f in sub_schema.fields() {
                    distinct.insert(f.name.clone(), rows.sqrt().max(1.0));
                }
                Estimate {
                    rows,
                    width: input.width,
                    distinct,
                    histograms: BTreeMap::new(),
                }
            }
            Operator::Union => {
                let mut rows = 0.0f64;
                let mut width = 0.0f64;
                let mut distinct: BTreeMap<String, f64> = BTreeMap::new();
                for &i in &node.inputs {
                    let e = &out[&i];
                    rows += e.rows;
                    width = width.max(e.width);
                    for (k, v) in &e.distinct {
                        let slot = distinct.entry(k.clone()).or_insert(0.0);
                        *slot = slot.max(*v);
                    }
                }
                Estimate {
                    rows,
                    width,
                    distinct,
                    histograms: BTreeMap::new(),
                }
            }
            Operator::TemporalJoin { keys, .. } => {
                let l = &out[&node.inputs[0]];
                let r = &out[&node.inputs[1]];
                let key_cols: Vec<String> = keys.iter().map(|(lc, _)| lc.clone()).collect();
                let d = l.key_distinct(&key_cols).max(1.0);
                // Temporal intersection prunes heavily: assume each left
                // event matches the right events of its key that are alive,
                // approximated as |L|·|R| / (d · 10).
                let rows = (l.rows * r.rows / d / 10.0).max(l.rows.min(r.rows) * 0.1);
                let mut distinct = l.distinct.clone();
                for (k, v) in &r.distinct {
                    distinct.entry(format!("{k}.r")).or_insert(*v);
                    distinct.entry(k.clone()).or_insert(*v);
                }
                Estimate {
                    rows,
                    width: l.width + r.width,
                    distinct: distinct.clone(),
                    histograms: BTreeMap::new(),
                }
            }
            Operator::AntiSemiJoin { .. } => {
                let l = &out[&node.inputs[0]];
                scale_rows(l, 0.8)
            }
            Operator::HopUdo { .. } => {
                let input = &out[&node.inputs[0]];
                Estimate {
                    rows: (input.rows / 10.0).max(1.0),
                    width: input.width,
                    distinct: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                }
            }
            // Re-expanding coalesced factor cells roughly doubles the
            // (already aggregated, hence small) input.
            Operator::SpreadGrid { .. } => scale_rows(&out[&node.inputs[0]], 2.0),
        };
        out.insert(id, est);
    }
    out
}

/// Estimate for a projection: rows pass through, width tracks the column
/// count, distinct/histograms survive only for bare column references.
fn project_estimate(exprs: &[(String, Expr)], input: &Estimate) -> Estimate {
    Estimate {
        rows: input.rows,
        width: input.width
            * (exprs.len() as f64 / input.distinct.len().max(1) as f64).clamp(0.2, 2.0),
        distinct: exprs
            .iter()
            .filter_map(|(name, e)| match e {
                Expr::Column(c) => input.distinct.get(c).map(|d| (name.clone(), *d)),
                _ => Some((name.clone(), input.rows.sqrt().max(1.0))),
            })
            .collect(),
        histograms: exprs
            .iter()
            .filter_map(|(name, e)| match e {
                Expr::Column(c) => input.histograms.get(c).map(|h| (name.clone(), h.clone())),
                _ => None,
            })
            .collect(),
    }
}

fn scale_rows(input: &Estimate, factor: f64) -> Estimate {
    Estimate {
        rows: (input.rows * factor).max(0.0),
        width: input.width,
        distinct: input
            .distinct
            .iter()
            .map(|(k, v)| (k.clone(), v.min(input.rows * factor).max(1.0)))
            .collect(),
        histograms: input.histograms.clone(),
    }
}

fn filter_selectivity(predicate: &Expr, input: &Estimate) -> f64 {
    match predicate {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => {
            // Equality with a literal: 1/distinct of the column.
            let col = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => {
                    Some(c)
                }
                _ => None,
            };
            match col.and_then(|c| input.distinct.get(c)) {
                Some(d) => (1.0 / d.max(1.0)).clamp(0.0001, 1.0),
                None => DEFAULT_FILTER_SELECTIVITY,
            }
        }
        Expr::Binary {
            op: op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
            left,
            right,
        } => {
            // Range predicate on a column with a histogram: estimate from
            // the equi-depth buckets; flipped operand order complements.
            let estimate = |c: &str, v: &relation::Value, col_on_left: bool| {
                let h = input.histograms.get(c)?;
                let x = v.as_double()?;
                let lt = h.selectivity_lt(x);
                let sel = match (op, col_on_left) {
                    (BinOp::Lt | BinOp::Le, true) | (BinOp::Gt | BinOp::Ge, false) => lt,
                    _ => 1.0 - lt,
                };
                Some(sel.clamp(0.001, 1.0))
            };
            match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => {
                    estimate(c, v, true).unwrap_or(DEFAULT_FILTER_SELECTIVITY)
                }
                (Expr::Literal(v), Expr::Column(c)) => {
                    estimate(c, v, false).unwrap_or(DEFAULT_FILTER_SELECTIVITY)
                }
                _ => DEFAULT_FILTER_SELECTIVITY,
            }
        }
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => filter_selectivity(left, input) * filter_selectivity(right, input),
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => (filter_selectivity(left, input) + filter_selectivity(right, input)).min(1.0),
        _ => DEFAULT_FILTER_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use relation::schema::{ColumnType, Field};
    use relation::{Row, Schema};
    use temporal::expr::{col, lit};
    use temporal::plan::Query;

    fn payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    fn stats() -> BTreeMap<String, DatasetStats> {
        let rows: Vec<Row> = (0..100)
            .map(|i| row![1 + i % 4, format!("u{}", i % 10)])
            .collect();
        let mut m = BTreeMap::new();
        m.insert("logs".to_string(), DatasetStats::compute(&payload(), &rows));
        m
    }

    #[test]
    fn equality_filter_uses_distinct_count() {
        let q = Query::new();
        let out = q
            .source("logs", payload())
            .filter(col("StreamId").eq(lit(1)));
        let plan = q.build(vec![out]).unwrap();
        let est = estimate_plan(&plan, &stats());
        let root = plan.roots()[0];
        // 100 rows / 4 distinct StreamIds = 25.
        assert!((est[&root].rows - 25.0).abs() < 1.0);
    }

    #[test]
    fn group_apply_preserves_key_distincts() {
        let q = Query::new();
        let out = q
            .source("logs", payload())
            .group_apply(&["UserId"], |g| g.window(10).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let est = estimate_plan(&plan, &stats());
        let root = plan.roots()[0];
        assert_eq!(est[&root].distinct.get("UserId").copied(), Some(10.0));
        assert!(est[&root].rows >= 100.0);
    }

    #[test]
    fn range_filter_uses_histogram() {
        // Time is uniform over 0..100 in the sample; `Time < 25` should
        // estimate ~25% instead of the default 50%.
        let q = Query::new();
        let schema = Schema::new(vec![
            Field::new("Time2", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
        ]);
        let out = q
            .source("logs", schema.clone())
            .filter(col("Time2").lt(lit(25i64)));
        let plan = q.build(vec![out]).unwrap();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("u{i}")]).collect();
        let mut m = BTreeMap::new();
        m.insert("logs".to_string(), DatasetStats::compute(&schema, &rows));
        let est = estimate_plan(&plan, &m);
        let got = est[&plan.roots()[0]].rows;
        assert!(
            (got - 25.0).abs() < 6.0,
            "histogram selectivity should give ~25 rows, got {got}"
        );
    }

    #[test]
    fn unknown_source_gets_defaults() {
        let q = Query::new();
        let out = q.source("mystery", payload()).count("N");
        let plan = q.build(vec![out]).unwrap();
        let est = estimate_plan(&plan, &BTreeMap::new());
        assert!(est[&plan.roots()[0]].rows > 0.0);
    }

    #[test]
    fn union_sums_rows() {
        let q = Query::new();
        let a = q.source("logs", payload());
        let u = a
            .clone()
            .filter(col("StreamId").eq(lit(1)))
            .union(a.filter(col("StreamId").eq(lit(2))));
        let plan = q.build(vec![u]).unwrap();
        let est = estimate_plan(&plan, &stats());
        assert!((est[&plan.roots()[0]].rows - 50.0).abs() < 2.0);
    }
}
