//! Temporal partitioning (paper §III-B).
//!
//! Many CQs — e.g. a global sliding-window count — have no payload column to
//! partition on. If the plan's history horizon is `w`, the time axis can be
//! divided into *spans* of width `s` with overlap `w`: span `i` receives
//! input events with timestamps in `[t0 + s·i − w, t0 + s·(i+1))` and owns
//! output whose LE falls in `[t0 + s·i, t0 + s·(i+1))`. Because every
//! instant a span owns sees the full `w` of history, clipping each span's
//! output to its owned interval and unioning the clips reproduces the
//! unpartitioned output exactly (the property test in `tests/` checks this
//! for random event sets and span widths).
//!
//! Span width trades duplicated work at overlaps (small `s` ⇒ each event is
//! replicated into `⌈w/s⌉+1` spans) against available parallelism (large
//! `s` ⇒ few spans) — the U-shaped curve of paper Fig 16.

use crate::bridge::EventEncoding;
use crate::error::{Result, TimrError};
use mapreduce::{
    Cluster, Dataset, Dfs, MrError, Partitioner, Reducer, ReducerContext, Stage, StageStats,
};
use relation::schema::{ColumnType, Field};
use relation::{Row, Schema, Value};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use temporal::exec::Bindings;
use temporal::plan::LogicalPlan;
use temporal::time::Lifetime;
use temporal::{Duration, Time};

/// Name of the injected span-index column.
pub const SPAN_COLUMN: &str = "__Span";

/// Configuration of a temporally-partitioned run.
#[derive(Debug, Clone)]
pub struct TemporalPartitionJob {
    /// Job name (prefixes dataset names).
    pub name: String,
    /// The temporal query: single output, single source, and *no* payload
    /// partitioning (it will be partitioned purely by time).
    pub plan: LogicalPlan,
    /// Span width `s`.
    pub span_width: Duration,
    /// Lifetime encoding of the source dataset.
    pub source_encoding: EventEncoding,
}

/// Outcome of a temporally-partitioned run.
#[derive(Debug)]
pub struct TemporalPartitionOutput {
    /// DFS name of the output dataset (Interval-encoded).
    pub dataset: String,
    /// Output payload schema.
    pub payload: Schema,
    /// Stage statistics of the span stage (the map/expand phase is local).
    pub stats: StageStats,
    /// Number of spans used.
    pub spans: usize,
    /// Replication factor: expanded rows / input rows.
    pub replication: f64,
}

impl TemporalPartitionJob {
    /// Build a job with defaults.
    pub fn new(name: impl Into<String>, plan: LogicalPlan, span_width: Duration) -> Self {
        TemporalPartitionJob {
            name: name.into(),
            plan,
            span_width,
            source_encoding: EventEncoding::Point,
        }
    }

    /// Run against the single source dataset the plan names.
    pub fn run(&self, dfs: &Dfs, cluster: &Cluster) -> Result<TemporalPartitionOutput> {
        if self.span_width <= 0 {
            return Err(TimrError::Compile("span width must be positive".into()));
        }
        let sources = self.plan.sources();
        if sources.len() != 1 || self.plan.roots().len() != 1 {
            return Err(TimrError::Compile(
                "temporal partitioning requires a single-source, single-output plan".into(),
            ));
        }
        let (source_name, payload_schema) = (sources[0].0.to_string(), sources[0].1.clone());
        let overlap = self.plan.history_horizon();
        let input = dfs.get(&source_name)?;

        // ---- map/expand phase: replicate rows into overlapping spans ----
        // Both passes stream over the shared DFS partitions; nothing is
        // copied until the replicated (span, row) pairs are built.
        let time_idx = input.schema.index_of(relation::schema::TIME_COLUMN)?;
        let mut min_t = Time::MAX;
        let mut max_t = Time::MIN;
        for r in input.iter() {
            let t = r
                .get(time_idx)
                .as_long()
                .ok_or_else(|| TimrError::Compile("non-integral Time in source row".into()))?;
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        if input.is_empty() {
            return Err(TimrError::Compile(
                "temporal partitioning of an empty dataset".into(),
            ));
        }
        let t0 = min_t;
        let s = self.span_width;
        let n_spans = (((max_t - t0) / s) + 1) as usize;

        let mut expanded: Vec<Row> = Vec::with_capacity(input.len() * 2);
        for r in input.iter() {
            let t = r.get(time_idx).as_long().expect("validated above");
            let d = t - t0;
            let lo = d / s; // first span whose input range contains t
            let hi = ((d + overlap) / s).min(n_spans as i64 - 1);
            for span in lo..=hi {
                let mut values = Vec::with_capacity(r.len() + 1);
                values.push(Value::Long(span));
                values.extend_from_slice(r.values());
                expanded.push(Row::new(values));
            }
        }
        let replication = expanded.len() as f64 / input.len() as f64;

        let mut fields = vec![Field::new(SPAN_COLUMN, ColumnType::Long)];
        fields.extend(input.schema.fields().iter().cloned());
        let expanded_schema = Schema::new(fields);
        let expanded_name = format!("{}__spans", self.name);
        dfs.put_overwrite(&expanded_name, Dataset::single(expanded_schema, expanded));

        // ---- reduce phase: one DSMS per span, output clipped to the
        //      span's owned interval ----
        let reducer = SpanReducer {
            plan: self.plan.clone(),
            source_name,
            payload_schema,
            source_encoding: self.source_encoding,
            t0,
            span_width: s,
            n_spans,
        };
        let output = format!("{}__out", self.name);
        let stage = Stage::new(
            format!("{}/spans", self.name),
            vec![expanded_name],
            output.clone(),
            Partitioner::BucketColumn {
                column: SPAN_COLUMN.into(),
            },
            n_spans,
            Arc::new(reducer),
        )?;
        let stats = cluster.run_stage(dfs, &stage)?;

        Ok(TemporalPartitionOutput {
            dataset: output,
            payload: self.plan.schema_of(self.plan.roots()[0]).clone(),
            stats,
            spans: n_spans,
            replication,
        })
    }

    /// Decode a run's output.
    pub fn output_stream(
        dfs: &Dfs,
        out: &TemporalPartitionOutput,
    ) -> Result<temporal::EventStream> {
        let ds = dfs.get(&out.dataset)?;
        Ok(EventEncoding::Interval
            .decode_stream(ds.iter(), &out.payload)?
            .normalize())
    }
}

/// Reducer for one span: strip the span column, run the DSMS, clip output
/// to the owned interval.
#[derive(Debug, Clone)]
struct SpanReducer {
    plan: LogicalPlan,
    source_name: String,
    payload_schema: Schema,
    source_encoding: EventEncoding,
    t0: Time,
    span_width: Duration,
    n_spans: usize,
}

impl Reducer for SpanReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        let payload = self.plan.schema_of(self.plan.roots()[0]);
        Ok(EventEncoding::Interval.dataset_schema(payload))
    }

    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        let to_mr = |m: String| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: m,
        };
        // Strip the leading span column (the one copy this reducer makes —
        // the borrowed shuffle rows themselves are shared across attempts).
        let rows: Vec<Row> = inputs
            .iter()
            .flatten()
            .map(|r| Row::new(r.values()[1..].to_vec()))
            .collect();
        let stream = self
            .source_encoding
            .decode_stream(&rows, &self.payload_schema)
            .map_err(|e| to_mr(e.to_string()))?;
        let mut sources: Bindings = FxHashMap::default();
        sources.insert(self.source_name.clone(), stream);
        let result = temporal::exec::execute_single(&self.plan, &sources)
            .map_err(|e| to_mr(e.to_string()))?;

        // Owned interval: [t0 + s·p, t0 + s·(p+1)), extended to ±∞ at the
        // first and last span so boundary output is never lost.
        let span = ctx.partition as i64;
        let own_start = if span == 0 {
            Time::MIN / 2
        } else {
            self.t0 + self.span_width * span
        };
        let own_end = if span as usize == self.n_spans - 1 {
            Time::MAX / 2
        } else {
            self.t0 + self.span_width * (span + 1)
        };
        let own = Lifetime::new(own_start, own_end);

        let mut clipped = temporal::EventStream::empty(result.schema().clone());
        for e in result.events() {
            if let Some(lt) = e.lifetime.intersect(&own) {
                clipped.push(e.with_lifetime(lt));
            }
        }
        crate::bridge::pull_through_queue(EventEncoding::Interval, clipped)
            .map_err(|e| to_mr(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use temporal::exec::{bindings, execute_single};
    use temporal::plan::Query;

    fn payload() -> Schema {
        Schema::new(vec![Field::new("AdId", ColumnType::Str)])
    }

    /// 30-tick sliding count with no payload key (the Fig 16 query shape).
    fn sliding_count_plan() -> LogicalPlan {
        let q = Query::new();
        let out = q.source("logs", payload()).window(30).count("N");
        q.build(vec![out]).unwrap()
    }

    fn log_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i * 3 % 997, format!("ad{}", i % 4)])
            .collect()
    }

    fn reference(rows: &[Row]) -> temporal::EventStream {
        let stream = EventEncoding::Point
            .decode_stream(rows, &payload())
            .unwrap();
        execute_single(&sliding_count_plan(), &bindings(vec![("logs", stream)]))
            .unwrap()
            .normalize()
    }

    fn run_with_span(rows: Vec<Row>, span_width: i64) -> (Dfs, TemporalPartitionOutput) {
        let dfs = Dfs::new();
        dfs.put(
            "logs",
            Dataset::single(EventEncoding::Point.dataset_schema(&payload()), rows),
        )
        .unwrap();
        let job = TemporalPartitionJob::new("tp", sliding_count_plan(), span_width);
        let out = job.run(&dfs, &Cluster::new()).unwrap();
        (dfs, out)
    }

    #[test]
    fn spans_reproduce_unpartitioned_output() {
        let rows = log_rows(400);
        let want = reference(&rows);
        for span_width in [40, 100, 250, 5000] {
            let (dfs, out) = run_with_span(rows.clone(), span_width);
            let got = TemporalPartitionJob::output_stream(&dfs, &out).unwrap();
            assert!(
                got.same_relation(&want),
                "span width {span_width} changed the result (spans={})",
                out.spans
            );
        }
    }

    #[test]
    fn small_spans_replicate_more() {
        let rows = log_rows(400);
        let (_, small) = run_with_span(rows.clone(), 40);
        let (_, large) = run_with_span(rows, 400);
        assert!(small.spans > large.spans);
        assert!(small.replication > large.replication);
        assert!(large.replication >= 1.0);
    }

    #[test]
    fn empty_dataset_rejected() {
        let dfs = Dfs::new();
        dfs.put(
            "logs",
            Dataset::single(EventEncoding::Point.dataset_schema(&payload()), vec![]),
        )
        .unwrap();
        let job = TemporalPartitionJob::new("tp", sliding_count_plan(), 100);
        assert!(job.run(&dfs, &Cluster::new()).is_err());
    }

    #[test]
    fn bad_span_width_rejected() {
        let dfs = Dfs::new();
        let job = TemporalPartitionJob::new("tp", sliding_count_plan(), 0);
        assert!(job.run(&dfs, &Cluster::new()).is_err());
    }
}
