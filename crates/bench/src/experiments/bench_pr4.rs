//! PR 4 acceptance benchmark: columnar event batches with vectorized
//! compiled execution.
//!
//! Two measurements, both against the compiled row path
//! ([`temporal::exec::ExecMode::Compiled`]), which PR 2 made the
//! performance baseline:
//!
//! 1. **Standalone DSMS**: reduce-phase query shapes — the click filter,
//!    the BT feature projection, a filter→project→filter chain, the UBP
//!    profile query, and the feature-selection z-test — executed in both
//!    modes at several stream widths. Outputs must be *byte-identical*
//!    (`==`, not just the same relation) at every width: the
//!    repeatability requirement restarted reducers rely on.
//! 2. **End-to-end**: the PR 2 click-scoring job (filter + three
//!    projection passes + keyed tumbling aggregation) through the full
//!    TiMR stack, once per mode, so the columnar reducer decode
//!    ([`timr`]'s `decode_batch`) is on the measured path. The DFS output
//!    partitions must match byte-for-byte; the reduce-phase wall ratio is
//!    reported alongside.
//!
//! Results go to `BENCH_PR4.json` for machine consumption; the headline
//! `best_speedup` is the largest columnar-vs-row ratio over the
//! standalone reduce-phase queries at their widest width.

use crate::table::Table;
use bt::queries::{feature_selection, labels_payload, log_payload, stream_id, train_rows_payload};
use bt::BtParams;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use std::time::{Duration, Instant};
use temporal::exec::{bindings, execute_single_with_mode, Bindings, ExecMode};
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Operator, Query};
use temporal::{Event, EventStream};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

/// Stream widths for the standalone sweep (events per source).
const WIDTHS: [usize; 3] = [10_000, 40_000, 120_000];
const USERS: usize = 5_000;
/// End-to-end log shape (mirrors the PR 2 job).
const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 20_000;
const PARTITIONS: usize = 8;
const E2E_USERS: usize = 500;
/// Timed repetitions per standalone measurement (minimum is reported).
const REPS: usize = 3;
/// Interleaved repetitions per mode for the end-to-end job.
const E2E_REPS: usize = 5;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Standalone reduce-phase queries
// ---------------------------------------------------------------------------

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
        Field::new("Position", ColumnType::Long),
    ])
}

fn op_stream(n: usize) -> EventStream {
    EventStream::new(
        op_schema(),
        (0..n)
            .map(|i| {
                Event::point(
                    i as i64,
                    row![
                        (1 + i % 2) as i32,
                        format!("u{}", i % USERS),
                        format!("ad{}", i % 50),
                        (i as i64 * 13) % 300,
                        (i as i64) % 8
                    ],
                )
            })
            .collect(),
    )
}

/// The BT feature projection: eight expressions per row, the shape where
/// vectorized evaluation pays the most.
fn feature_exprs() -> Vec<(String, temporal::Expr)> {
    vec![
        ("UserId".into(), col("UserId")),
        ("KwAdId".into(), col("KwAdId")),
        ("Dwell".into(), col("Dwell")),
        (
            "Score".into(),
            col("Dwell")
                .mul(lit(8))
                .sub(col("Position").mul(lit(3)))
                .add(col("StreamId")),
        ),
        (
            "SlotBias".into(),
            col("Position").mul(col("Position")).add(lit(1)),
        ),
        (
            "Engaged".into(),
            col("Dwell").ge(lit(30)).and(col("Position").lt(lit(4))),
        ),
        (
            "DwellNorm".into(),
            col("Dwell").mul(lit(1000)).div(col("Dwell").add(lit(60))),
        ),
        (
            "Interaction".into(),
            col("Dwell").mul(col("Position")).sub(col("StreamId")),
        ),
    ]
}

/// Standalone plans over one `op_schema` source of `n` events, except the
/// z-test which carries its own two sources.
fn standalone_plans(params: &BtParams, n: usize) -> Vec<(&'static str, LogicalPlan, Bindings)> {
    let mut plans = Vec::new();

    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))));
    plans.push((
        "filter",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    let q = Query::new();
    let out = q.source("in", op_schema()).project(feature_exprs());
    plans.push((
        "project",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    // Filter → project → filter: the chain stays columnar end to end, so
    // the one-time transposition amortizes over three vectorized passes.
    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .filter(col("StreamId").eq(lit(1)))
        .project(feature_exprs())
        .filter(col("Engaged").or(col("Score").ge(lit(1200))));
    plans.push((
        "filter_project_chain",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    // The UBP profile query (paper Fig 12 left half): keyword events per
    // (user, kw/ad), sliding activity count.
    let q = Query::new();
    let out = q
        .source("logs", log_payload())
        .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
        .group_apply(&["UserId", "KwAdId"], |g| g.window(params.tau).count("Cnt"));
    let logs = EventStream::new(
        log_payload(),
        (0..n)
            .map(|i| {
                Event::point(
                    (i as i64) * 40,
                    row![
                        stream_id::KEYWORD,
                        format!("user-{:05}", i % 1_500),
                        format!("kw-{:03}", (i * 7) % 40)
                    ],
                )
            })
            .collect(),
    );
    plans.push((
        "profile_ubp",
        q.build(vec![out]).unwrap(),
        bindings(vec![("logs", logs)]),
    ));

    // The feature-selection z-test: two GroupApplies + TemporalJoin + the
    // z-score expression, over labels and training rows.
    let ztest = feature_selection::query(params);
    let labels = EventStream::new(
        labels_payload(),
        (0..n / 2)
            .map(|i| {
                Event::point(
                    (i as i64) * 50,
                    row![
                        format!("user-{:05}", i % 4_000),
                        format!("ad-{:03}", i % 60),
                        i32::from(i % 9 == 0)
                    ],
                )
            })
            .collect(),
    );
    let rows = EventStream::new(
        train_rows_payload(),
        (0..n)
            .map(|i| {
                Event::point(
                    (i as i64) * 50,
                    row![
                        format!("user-{:05}", i % 4_000),
                        format!("ad-{:03}", i % 60),
                        i32::from(i % 9 == 0),
                        format!("kw-{:04}", (i * 3) % 250),
                        1i64 + (i as i64) % 5
                    ],
                )
            })
            .collect(),
    );
    plans.push((
        "ztest",
        ztest.plan,
        bindings(vec![("labels", labels), ("train_rows", rows)]),
    ));

    plans
}

fn time_plan(plan: &LogicalPlan, sources: &Bindings, mode: ExecMode) -> (Duration, EventStream) {
    let mut best: Option<(Duration, EventStream)> = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let out = execute_single_with_mode(plan, sources, mode).expect("plan runs");
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, out));
        }
    }
    best.expect("REPS > 0")
}

// ---------------------------------------------------------------------------
// End-to-end job (the PR 2 click-scoring shape, row vs columnar reducers)
// ---------------------------------------------------------------------------

fn build_log() -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&op_schema());
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            let u = i as usize % E2E_USERS;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300,
                i % 8
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

/// Filter + feature projection + refilter + keyed tumbling aggregation —
/// all reduce-phase DSMS work, dominated by per-row expression evaluation.
fn click_score_job(mode: ExecMode) -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))))
        .project(feature_exprs())
        .filter(col("Engaged").or(col("Score").ge(lit(1200))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("ScoreSq".into(), col("Score").mul(col("Score"))),
            (
                "Mix".into(),
                col("Score")
                    .mul(lit(3))
                    .add(col("SlotBias").mul(lit(2)))
                    .sub(col("Interaction")),
            ),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("ScoreSum".into(), temporal::agg::AggExpr::Sum(col("Score"))),
                ("MixSum".into(), temporal::agg::AggExpr::Sum(col("Mix"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr4", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(mode)
}

struct JobRun {
    wall: Duration,
    reduce_wall: Duration,
    output: Vec<Vec<Row>>,
}

fn run_job_once(log: &Dataset, mode: ExecMode, threads: usize) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos: ChaosPlan::none(),
        retry: RetryPolicy::no_backoff(1),
        ..ClusterConfig::default()
    });
    let out = click_score_job(mode).run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        reduce_wall: out.stats.stages.iter().map(|s| s.reduce_wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
    }
}

/// Run both modes `E2E_REPS` times, **interleaved** (R, C, R, C, …) so
/// transient system noise lands on both modes evenly, and keep each
/// mode's fastest run by reduce wall time.
fn best_jobs(log: &Dataset, threads: usize) -> (JobRun, JobRun) {
    let mut runs = (Vec::new(), Vec::new());
    for _ in 0..E2E_REPS {
        runs.0.push(run_job_once(log, ExecMode::Compiled, threads));
        runs.1.push(run_job_once(log, ExecMode::Columnar, threads));
    }
    let best = |v: Vec<JobRun>| {
        v.into_iter()
            .min_by_key(|r| r.reduce_wall)
            .expect("E2E_REPS > 0")
    };
    (best(runs.0), best(runs.1))
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let params = BtParams::default();
    let mut table = Table::new(&["Query", "Events", "Row ms", "Columnar ms", "Speedup"]);
    let mut query_json = Vec::new();
    let mut best_speedup = 0.0f64;

    for &n in &WIDTHS {
        for (name, plan, sources) in standalone_plans(&params, n) {
            let (tr, out_r) = time_plan(&plan, &sources, ExecMode::Compiled);
            let (tc, out_c) = time_plan(&plan, &sources, ExecMode::Columnar);
            assert_eq!(
                out_r.events(),
                out_c.events(),
                "{name} @ {n}: row and columnar outputs must be byte-identical"
            );
            let speedup = tr.as_secs_f64() / tc.as_secs_f64().max(1e-9);
            if n == WIDTHS[WIDTHS.len() - 1] {
                best_speedup = best_speedup.max(speedup);
            }
            table.row(vec![
                name.into(),
                n.to_string(),
                format!("{:.2}", ms(tr)),
                format!("{:.2}", ms(tc)),
                format!("{speedup:.2}x"),
            ]);
            query_json.push(serde_json::Value::Object(vec![
                ("query".into(), serde_json::Value::Str(name.into())),
                ("events".into(), serde_json::Value::UInt(n as u64)),
                ("row_ms".into(), serde_json::Value::Float(ms(tr))),
                ("columnar_ms".into(), serde_json::Value::Float(ms(tc))),
                ("speedup".into(), serde_json::Value::Float(speedup)),
            ]));
        }
    }

    let log = build_log();
    let rows = log.len();
    // One worker per core — oversubscription would measure time-slicing,
    // not reducer work.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let (row_job, col_job) = best_jobs(&log, threads);
    assert_eq!(
        row_job.output, col_job.output,
        "the two modes must write byte-identical DFS partitions"
    );
    let reduce_speedup =
        row_job.reduce_wall.as_secs_f64() / col_job.reduce_wall.as_secs_f64().max(1e-9);
    let wall_speedup = row_job.wall.as_secs_f64() / col_job.wall.as_secs_f64().max(1e-9);
    table.row(vec![
        "e2e reduce phase".into(),
        rows.to_string(),
        format!("{:.1}", ms(row_job.reduce_wall)),
        format!("{:.1}", ms(col_job.reduce_wall)),
        format!("{reduce_speedup:.2}x"),
    ]);
    table.row(vec![
        "e2e stage wall".into(),
        rows.to_string(),
        format!("{:.1}", ms(row_job.wall)),
        format!("{:.1}", ms(col_job.wall)),
        format!("{wall_speedup:.2}x"),
    ]);

    let job_json = |r: &JobRun| {
        serde_json::Value::Object(vec![
            ("wall_ms".into(), serde_json::Value::Float(ms(r.wall))),
            (
                "reduce_wall_ms".into(),
                serde_json::Value::Float(ms(r.reduce_wall)),
            ),
        ])
    };
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr4".into())),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        ("queries".into(), serde_json::Value::Array(query_json)),
        ("e2e_rows".into(), serde_json::Value::UInt(rows as u64)),
        ("e2e_row".into(), job_json(&row_job)),
        ("e2e_columnar".into(), job_json(&col_job)),
        (
            "e2e_reduce_speedup".into(),
            serde_json::Value::Float(reduce_speedup),
        ),
        (
            "best_speedup".into(),
            serde_json::Value::Float(best_speedup),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR4.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR4.json: {e}");
    }

    format!(
        "PR 4 — columnar batches vs compiled row path, widths {WIDTHS:?} \
         (best of {REPS}; written to BENCH_PR4.json):\n{}\
         outputs byte-identical at every width; best standalone speedup at \
         {} events: {best_speedup:.2}x; e2e reduce-phase: {reduce_speedup:.2}x\n",
        table.render(),
        WIDTHS[WIDTHS.len() - 1],
    )
}
