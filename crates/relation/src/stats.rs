//! Dataset statistics for the cost-based optimizer.
//!
//! TiMR's plan-annotation optimizer (paper §VI) needs, for each input
//! dataset, (a) row counts — to cost operators and exchanges — and (b)
//! per-column distinct counts — to estimate how many partitions a candidate
//! partitioning key yields and hence the parallel speedup. These are the same
//! statistics SCOPE's Cascades integration consumes.

use crate::row::Row;
use crate::schema::Schema;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// An equi-depth histogram over a numeric column: `bounds` holds the
/// upper edge of each bucket, each bucket covering an equal share of the
/// rows. Gives the optimizer range-predicate selectivities the way
/// SCOPE's Cascades integration consumes them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Ascending bucket upper bounds (length = bucket count).
    pub bounds: Vec<f64>,
}

impl Histogram {
    /// Build an equi-depth histogram with up to `buckets` buckets from
    /// numeric samples. Returns `None` for empty input.
    pub fn build(mut samples: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if samples.is_empty() || buckets == 0 {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let buckets = buckets.min(n);
        let bounds = (1..=buckets)
            .map(|b| samples[(b * n / buckets).saturating_sub(1)])
            .collect();
        Some(Histogram { bounds })
    }

    /// Estimated fraction of rows with value `< x` (monotone in `x`;
    /// linear interpolation inside the straddled bucket).
    pub fn selectivity_lt(&self, x: f64) -> f64 {
        let b = self.bounds.len() as f64;
        let mut covered = 0.0;
        let mut lower = f64::NEG_INFINITY;
        for (i, &upper) in self.bounds.iter().enumerate() {
            if x > upper {
                covered = (i + 1) as f64;
                lower = upper;
                continue;
            }
            // x falls inside bucket i: interpolate.
            let span = (upper - lower).max(f64::MIN_POSITIVE);
            let frac = if lower.is_infinite() {
                1.0
            } else {
                ((x - lower) / span).clamp(0.0, 1.0)
            };
            return ((covered + frac) / b).clamp(0.0, 1.0);
        }
        1.0
    }
}

/// Statistics about one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Estimated number of distinct values.
    pub distinct: u64,
    /// Equi-depth histogram (numeric columns only).
    pub histogram: Option<Histogram>,
}

/// Statistics about a dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total row count.
    pub rows: u64,
    /// Average row width in bytes (for exchange-cost estimation).
    pub avg_row_width: f64,
    /// Per-column statistics.
    pub columns: Vec<ColumnStats>,
}

impl DatasetStats {
    /// Exact statistics computed in one streaming pass over borrowed rows
    /// — no materialized copy of the dataset is required. Fine at simulator
    /// scale; a production system would sample.
    pub fn compute<'a, I>(schema: &Schema, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a Row>,
    {
        const HISTOGRAM_BUCKETS: usize = 32;
        let mut distinct: Vec<FxHashSet<crate::value::Value>> =
            (0..schema.len()).map(|_| FxHashSet::default()).collect();
        let mut numeric: Vec<Vec<f64>> = (0..schema.len()).map(|_| Vec::new()).collect();
        let mut width_sum = 0usize;
        let mut n = 0u64;
        for row in rows {
            n += 1;
            width_sum += row.width();
            for (i, v) in row.values().iter().enumerate() {
                distinct[i].insert(v.clone());
                if let Some(x) = v.as_double() {
                    numeric[i].push(x);
                }
            }
        }
        DatasetStats {
            rows: n,
            avg_row_width: if n == 0 {
                0.0
            } else {
                width_sum as f64 / n as f64
            },
            columns: schema
                .fields()
                .iter()
                .zip(distinct)
                .zip(numeric)
                .map(|((f, set), samples)| ColumnStats {
                    name: f.name.clone(),
                    distinct: set.len() as u64,
                    // Histogram only when the column is (mostly) numeric.
                    histogram: if samples.len() as u64 * 2 >= n && n > 0 {
                        Histogram::build(samples, HISTOGRAM_BUCKETS)
                    } else {
                        None
                    },
                })
                .collect(),
        }
    }

    /// The histogram of `column`, if one was built.
    pub fn histogram_of(&self, column: &str) -> Option<&Histogram> {
        self.columns
            .iter()
            .find(|c| c.name == column)
            .and_then(|c| c.histogram.as_ref())
    }

    /// Distinct count of `column`, if known.
    pub fn distinct_of(&self, column: &str) -> Option<u64> {
        self.columns
            .iter()
            .find(|c| c.name == column)
            .map(|c| c.distinct)
    }

    /// Estimated number of distinct composite keys over `columns`:
    /// the product of per-column distinct counts, clamped by the row count
    /// (the standard independence assumption).
    pub fn distinct_of_key(&self, columns: &[String]) -> u64 {
        let mut product: u64 = 1;
        for c in columns {
            let d = self.distinct_of(c).unwrap_or(1).max(1);
            product = product.saturating_mul(d);
        }
        product.min(self.rows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnType, Field};

    fn sample() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
            Field::new("Kw", ColumnType::Str),
        ]);
        let rows = vec![
            row![1i64, "u1", "a"],
            row![2i64, "u1", "b"],
            row![3i64, "u2", "a"],
            row![4i64, "u2", "a"],
        ];
        (schema, rows)
    }

    #[test]
    fn compute_counts_rows_and_distincts() {
        let (schema, rows) = sample();
        let stats = DatasetStats::compute(&schema, &rows);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.distinct_of("UserId"), Some(2));
        assert_eq!(stats.distinct_of("Kw"), Some(2));
        assert_eq!(stats.distinct_of("Time"), Some(4));
        assert!(stats.avg_row_width > 0.0);
    }

    #[test]
    fn composite_key_estimate_clamps_to_row_count() {
        let (schema, rows) = sample();
        let stats = DatasetStats::compute(&schema, &rows);
        // 2 users x 2 keywords = 4, equals the row count clamp.
        assert_eq!(stats.distinct_of_key(&["UserId".into(), "Kw".into()]), 4);
        // Per-column estimate is untouched by the clamp.
        assert_eq!(stats.distinct_of_key(&["UserId".into()]), 2);
    }

    #[test]
    fn histogram_estimates_range_selectivity() {
        // Uniform 0..999: selectivity of `< x` should be ≈ x/1000.
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(samples, 32).unwrap();
        for (x, want) in [
            (0.0, 0.0),
            (250.0, 0.25),
            (500.0, 0.5),
            (999.0, 1.0),
            (5000.0, 1.0),
        ] {
            let got = h.selectivity_lt(x);
            assert!(
                (got - want).abs() < 0.05,
                "selectivity_lt({x}) = {got}, want ≈ {want}"
            );
        }
        // Monotone.
        let mut prev = -1.0;
        for x in (0..100).map(|i| i as f64 * 12.0) {
            let s = h.selectivity_lt(x);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn histograms_built_for_numeric_columns_only() {
        let (schema, rows) = sample();
        let stats = DatasetStats::compute(&schema, &rows);
        assert!(stats.histogram_of("Time").is_some());
        assert!(stats.histogram_of("UserId").is_none());
        assert!(Histogram::build(vec![], 8).is_none());
    }

    #[test]
    fn empty_dataset_stats() {
        let (schema, _) = sample();
        let stats = DatasetStats::compute(&schema, &[]);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.avg_row_width, 0.0);
        assert_eq!(stats.distinct_of_key(&["UserId".into()]), 1);
    }
}
