//! GroupApply: apply a sub-plan to each group (paper §II-A.2, Fig 4).
//!
//! The input is hash-partitioned on the grouping key; the sub-plan runs once
//! per group over that group's events; the grouping key columns are
//! prepended to every output row. Groups are processed in sorted key order
//! so execution is deterministic even before normalization.
//!
//! Partitioning is hash-then-compare: events bucket by the 64-bit key hash
//! (no per-event key materialization) and are **moved** into their group,
//! not cloned; hash collisions between distinct keys are separated by
//! comparing key cells against each group's first event. One key per
//! *group* is materialized at the end for the deterministic sort.

use crate::error::Result;
use crate::event::Event;
use crate::key::KeySelector;
use crate::plan::LogicalPlan;
use crate::stream::EventStream;
use relation::{Row, Schema, Value};
use rustc_hash::FxHashMap;

/// Run `subplan` per distinct value of `keys`, prepending the key columns to
/// output rows. `run_subplan` is supplied by the executor (it knows how to
/// evaluate a plan against a bound GroupInput).
pub fn group_apply(
    input: EventStream,
    keys: &[String],
    subplan: &LogicalPlan,
    run_subplan: &mut dyn FnMut(&LogicalPlan, EventStream) -> Result<EventStream>,
) -> Result<EventStream> {
    let in_schema = input.schema().clone();
    let sel = KeySelector::new(&in_schema, keys)?;

    // Partition events by key hash, moving each event into its group; a
    // bucket holds one group per distinct key that hashes there.
    let mut buckets: FxHashMap<u64, Vec<Vec<Event>>> = FxHashMap::default();
    for e in input.into_events() {
        let groups = buckets.entry(sel.hash(&e.payload)).or_default();
        match groups
            .iter_mut()
            .find(|g| sel.matches_same(&g[0].payload, &e.payload))
        {
            Some(g) => g.push(e),
            None => groups.push(vec![e]),
        }
    }

    // Deterministic group order: materialize one key per group and sort.
    let mut ordered: Vec<(Vec<Value>, Vec<Event>)> = buckets
        .into_values()
        .flatten()
        .map(|g| (sel.extract(&g[0].payload), g))
        .collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));

    // Output schema: key fields + sub-plan output fields.
    let sub_out_schema = subplan.schema_of(subplan.roots()[0]).clone();
    let mut fields = Vec::with_capacity(keys.len() + sub_out_schema.len());
    for k in keys {
        fields.push(in_schema.field(k)?.clone());
    }
    fields.extend(sub_out_schema.fields().iter().cloned());
    let out_schema = Schema::new(fields);

    let mut out_events = Vec::new();
    for (key, events) in ordered {
        let group_stream = EventStream::new(in_schema.clone(), events);
        let result = run_subplan(subplan, group_stream)?;
        for e in result.into_events() {
            let mut values = Vec::with_capacity(key.len() + e.payload.len());
            values.extend(key.iter().cloned());
            values.extend(e.payload.into_values());
            out_events.push(Event::new(e.lifetime, Row::new(values)));
        }
    }
    Ok(EventStream::new(out_schema, out_events))
}

#[cfg(test)]
mod tests {
    // GroupApply needs the executor to run its sub-plan; behavioral tests
    // live in `crate::exec` where the recursion is available. Here we test
    // only the partition-and-prepend mechanics with a stub sub-plan runner.
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::col;
    use crate::plan::Query;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    #[test]
    fn partitions_and_prepends_keys() {
        let schema = Schema::new(vec![
            Field::new("Id", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ]);
        let input = EventStream::new(
            schema.clone(),
            vec![
                Event::point(1, row!["b", 10i64]),
                Event::point(2, row!["a", 20i64]),
                Event::point(3, row!["b", 30i64]),
            ],
        );
        // Sub-plan: sum V (validated plan; executed here by a stub).
        let q = Query::new();
        let sub = q.source("unused", schema.clone()); // placeholder to own arena
        drop(sub);
        let q = Query::new();
        let g = {
            // Build a real sub-plan the way the builder does.
            let out = q
                .source("x", schema.clone())
                .aggregate(vec![("S".into(), AggExpr::Sum(col("V")))]);
            q.build(vec![out]).unwrap()
        };

        let mut stub = |_plan: &LogicalPlan, group: EventStream| {
            // Stub: emit one point event with the number of group events.
            let s = Schema::new(vec![Field::new("S", ColumnType::Long)]);
            Ok(EventStream::new(
                s,
                vec![Event::point(0, row![group.len() as i64])],
            ))
        };
        let out = group_apply(input, &["Id".to_string()], &g, &mut stub).unwrap();
        assert_eq!(out.schema().names(), vec!["Id", "S"]);
        // Groups in sorted key order: "a" then "b".
        assert_eq!(out.events()[0].payload, row!["a", 1i64]);
        assert_eq!(out.events()[1].payload, row!["b", 2i64]);
    }
}
