//! Evaluation methodology (paper §V).
//!
//! - [`split_by_time`] — the paper's 50/50 train/test split.
//! - [`Scheme`] — the data-reduction schemes under comparison: KE-z at a
//!   threshold, KE-pop at a budget, F-Ex, or no reduction.
//! - [`train_models`] — per-ad logistic regression on scheme-reduced
//!   examples, recording learning time and mean profile size (the §V-D
//!   metrics).
//! - [`lift_coverage`] — the CTR-lift-vs-coverage curves of Figs 22–23:
//!   sweep a prediction threshold, report `(coverage, CTR, lift)`.
//! - [`keyword_set_lift`] — the Fig 21 table: CTR over example subsets
//!   selected by positive/negative keyword presence.

use crate::baselines::{f_ex, ke_pop};
use crate::example::{ctr, mean_profile_entries, Example};
use crate::lr::{train, LrConfig, LrModel};
use crate::pipeline::KeywordScore;
use rustc_hash::FxHashSet;
use std::collections::BTreeMap;
use std::time::Duration;

/// A data-reduction scheme (paper §V-C).
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Keyword elimination with |z| threshold (KE-z).
    KeZ {
        /// The z threshold.
        threshold: f64,
    },
    /// Top-`n` keywords per ad by frequency (KE-pop).
    KePop {
        /// Keyword budget per ad.
        n: usize,
    },
    /// Static category mapping (F-Ex).
    FEx,
    /// No reduction (all keywords with support).
    All,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::KeZ { threshold } => write!(f, "KE-{threshold}"),
            Scheme::KePop { n } => write!(f, "KE-pop({n})"),
            Scheme::FEx => write!(f, "F-Ex"),
            Scheme::All => write!(f, "All"),
        }
    }
}

/// Split examples at `split_time` into (train, test).
pub fn split_by_time(examples: &[Example], split_time: i64) -> (Vec<Example>, Vec<Example>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for e in examples {
        if e.time < split_time {
            train.push(e.clone());
        } else {
            test.push(e.clone());
        }
    }
    (train, test)
}

/// Group examples by ad class.
pub fn by_ad(examples: &[Example]) -> BTreeMap<String, Vec<Example>> {
    let mut out: BTreeMap<String, Vec<Example>> = BTreeMap::new();
    for e in examples {
        out.entry(e.ad.clone()).or_default().push(e.clone());
    }
    out
}

/// Apply a scheme's feature transformation to one ad's examples.
pub fn reduce_examples(
    ad: &str,
    examples: &[Example],
    scheme: &Scheme,
    scores: &[KeywordScore],
) -> Vec<Example> {
    match scheme {
        Scheme::All => {
            let supported: FxHashSet<&str> = scores
                .iter()
                .filter(|s| s.ad == ad)
                .map(|s| s.keyword.as_str())
                .collect();
            examples
                .iter()
                .map(|e| e.project_features(&|k| supported.contains(k)))
                .collect()
        }
        Scheme::KeZ { threshold } => {
            let kept: FxHashSet<&str> = scores
                .iter()
                .filter(|s| s.ad == ad && s.z.abs() > *threshold)
                .map(|s| s.keyword.as_str())
                .collect();
            examples
                .iter()
                .map(|e| e.project_features(&|k| kept.contains(k)))
                .collect()
        }
        Scheme::KePop { n } => {
            let selected = ke_pop::select(examples, *n);
            let empty = FxHashSet::default();
            let kept = selected.get(ad).unwrap_or(&empty);
            examples
                .iter()
                .map(|e| e.project_features(&|k| kept.contains(k)))
                .collect()
        }
        Scheme::FEx => examples
            .iter()
            .map(|e| e.map_features(&|k| f_ex::categories(k)))
            .collect(),
    }
}

/// Keywords a scheme retains for an ad (for dimensionality reporting,
/// Fig 20). F-Ex reports its fixed category count.
pub fn retained_dimensions(ad: &str, scheme: &Scheme, scores: &[KeywordScore]) -> usize {
    match scheme {
        Scheme::All => scores.iter().filter(|s| s.ad == ad).count(),
        Scheme::KeZ { threshold } => scores
            .iter()
            .filter(|s| s.ad == ad && s.z.abs() > *threshold)
            .count(),
        Scheme::KePop { n } => *n,
        Scheme::FEx => f_ex::CATEGORY_COUNT as usize,
    }
}

/// Compute keyword z-scores directly from an example set — numerically
/// identical to running the feature-selection CQ over the same events
/// (cross-checked in tests), used where the evaluation needs scores from a
/// *split* of the data (train-only scores, so test information never leaks
/// into feature selection).
pub fn scores_from_examples(
    examples: &[Example],
    min_support: i64,
    min_example_support: i64,
) -> Vec<KeywordScore> {
    use crate::ztest::{has_support, z_score, KeywordCounts};
    let mut totals: BTreeMap<&str, (i64, i64)> = BTreeMap::new();
    let mut per_kw: BTreeMap<(&str, &str), (i64, i64)> = BTreeMap::new();
    for e in examples {
        let t = totals.entry(e.ad.as_str()).or_insert((0, 0));
        t.0 += i64::from(e.label == 1);
        t.1 += 1;
        for kw in e.features.keys() {
            let slot = per_kw.entry((e.ad.as_str(), kw.as_str())).or_insert((0, 0));
            slot.0 += i64::from(e.label == 1);
            slot.1 += 1;
        }
    }
    let mut out = Vec::new();
    for ((ad, kw), (cw, ew)) in per_kw {
        let (tc, te) = totals[ad];
        let counts = KeywordCounts {
            clicks_with: cw,
            examples_with: ew,
            total_clicks: tc,
            total_examples: te,
        };
        if !has_support(&counts, min_support, min_example_support) {
            continue;
        }
        let Some(z) = z_score(&counts) else { continue };
        out.push(KeywordScore {
            ad: ad.to_string(),
            keyword: kw.to_string(),
            clicks_with: cw,
            examples_with: ew,
            total_clicks: tc,
            total_examples: te,
            z,
        });
    }
    out
}

/// A trained per-ad model with its §V-D accounting.
#[derive(Debug)]
pub struct TrainedModel {
    /// The LR model.
    pub model: LrModel,
    /// Wall-clock learning time.
    pub learn_time: Duration,
    /// Mean sparse-profile entries after reduction (memory metric).
    pub mean_entries: f64,
    /// Retained feature dimensionality.
    pub dimensions: usize,
}

/// Train one model per ad under `scheme`.
pub fn train_models(
    train_examples: &BTreeMap<String, Vec<Example>>,
    scheme: &Scheme,
    scores: &[KeywordScore],
    config: &LrConfig,
) -> BTreeMap<String, TrainedModel> {
    let mut out = BTreeMap::new();
    for (ad, examples) in train_examples {
        let reduced = reduce_examples(ad, examples, scheme, scores);
        let start = std::time::Instant::now();
        let model = train(&reduced, config);
        let learn_time = start.elapsed();
        out.insert(
            ad.clone(),
            TrainedModel {
                dimensions: model.dimensionality(),
                mean_entries: mean_profile_entries(&reduced),
                model,
                learn_time,
            },
        );
    }
    out
}

/// One point on a lift/coverage curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LiftPoint {
    /// Fraction of test examples above the threshold.
    pub coverage: f64,
    /// CTR among covered examples.
    pub ctr: f64,
    /// Absolute lift: `ctr − overall_ctr`.
    pub lift: f64,
    /// Relative lift percentage: `(ctr / overall_ctr − 1) · 100`.
    pub lift_pct: f64,
}

/// CTR-lift vs. coverage for one ad (Figs 22–23): examples are ranked by
/// model prediction; each requested coverage keeps the top fraction.
pub fn lift_coverage(
    ad: &str,
    model: &TrainedModel,
    test_examples: &[Example],
    scheme: &Scheme,
    scores: &[KeywordScore],
    coverages: &[f64],
) -> Vec<LiftPoint> {
    let reduced = reduce_examples(ad, test_examples, scheme, scores);
    let overall = ctr(&reduced);
    let mut ranked: Vec<(f64, u8)> = reduced
        .iter()
        .map(|e| (model.model.predict(&e.features), e.label))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    coverages
        .iter()
        .map(|&c| {
            let k = ((c * ranked.len() as f64).ceil() as usize).clamp(1, ranked.len().max(1));
            let top = &ranked[..k.min(ranked.len())];
            let top_ctr = if top.is_empty() {
                0.0
            } else {
                top.iter().filter(|(_, l)| *l == 1).count() as f64 / top.len() as f64
            };
            LiftPoint {
                coverage: c,
                ctr: top_ctr,
                lift: top_ctr - overall,
                lift_pct: if overall > 0.0 {
                    (top_ctr / overall - 1.0) * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One row of the Fig 21 table.
#[derive(Debug, Clone)]
pub struct KeywordSetLift {
    /// Which example subset ("all", "≥1 pos kw", …).
    pub subset: &'static str,
    /// Clicks in the subset.
    pub clicks: u64,
    /// Examples in the subset.
    pub examples: u64,
    /// Subset CTR.
    pub ctr: f64,
    /// Relative lift % vs. the full set.
    pub lift_pct: f64,
}

/// The Fig 21 experiment: CTR over example subsets selected by presence of
/// positive-score / negative-score keywords (z from the *training* phase,
/// applied to *test* examples).
pub fn keyword_set_lift(
    test_examples: &[Example],
    positive: &FxHashSet<String>,
    negative: &FxHashSet<String>,
) -> Vec<KeywordSetLift> {
    let has = |e: &Example, set: &FxHashSet<String>| e.features.keys().any(|k| set.contains(k));
    type SubsetPredicate<'a> = Box<dyn Fn(&Example) -> bool + 'a>;
    let rows: Vec<(&'static str, SubsetPredicate)> = vec![
        ("All", Box::new(|_| true)),
        (">=1 pos kw", Box::new(move |e: &Example| has(e, positive))),
        (">=1 neg kw", Box::new(move |e: &Example| has(e, negative))),
        (
            "Only pos kws",
            Box::new(move |e: &Example| has(e, positive) && !has(e, negative)),
        ),
        (
            "Only neg kws",
            Box::new(move |e: &Example| has(e, negative) && !has(e, positive)),
        ),
    ];
    let overall = ctr(test_examples);
    rows.into_iter()
        .map(|(name, pred)| {
            let subset: Vec<&Example> = test_examples.iter().filter(|e| pred(e)).collect();
            let clicks = subset.iter().filter(|e| e.label == 1).count() as u64;
            let examples = subset.len() as u64;
            let c = if examples == 0 {
                0.0
            } else {
                clicks as f64 / examples as f64
            };
            KeywordSetLift {
                subset: name,
                clicks,
                examples,
                ctr: c,
                lift_pct: if overall > 0.0 {
                    (c / overall - 1.0) * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn ex(t: i64, ad: &str, label: u8, kws: &[(&str, f64)]) -> Example {
        Example {
            time: t,
            user: format!("u{t}"),
            ad: ad.into(),
            label,
            features: kws
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<FxHashMap<_, _>>(),
        }
    }

    fn score(ad: &str, kw: &str, z: f64) -> KeywordScore {
        KeywordScore {
            ad: ad.into(),
            keyword: kw.into(),
            clicks_with: 10,
            examples_with: 20,
            total_clicks: 20,
            total_examples: 200,
            z,
        }
    }

    #[test]
    fn split_respects_time() {
        let examples = vec![ex(1, "a", 0, &[]), ex(10, "a", 1, &[])];
        let (tr, te) = split_by_time(&examples, 5);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 1);
        assert_eq!(te[0].label, 1);
    }

    #[test]
    fn ke_z_keeps_both_signs() {
        let scores = vec![
            score("a", "pos", 5.0),
            score("a", "neg", -4.0),
            score("a", "weak", 0.3),
        ];
        let examples = vec![ex(
            0,
            "a",
            1,
            &[("pos", 1.0), ("neg", 1.0), ("weak", 1.0), ("junk", 1.0)],
        )];
        let reduced = reduce_examples("a", &examples, &Scheme::KeZ { threshold: 1.28 }, &scores);
        let kept: Vec<&String> = reduced[0].features.keys().collect();
        assert_eq!(kept.len(), 2);
        assert!(reduced[0].features.contains_key("pos"));
        assert!(reduced[0].features.contains_key("neg"));
    }

    #[test]
    fn f_ex_collapses_to_categories() {
        let examples = vec![ex(0, "a", 0, &[("icarly", 2.0), ("dell", 1.0)])];
        let reduced = reduce_examples("a", &examples, &Scheme::FEx, &[]);
        assert!(reduced[0].features.keys().all(|k| k.starts_with("cat")));
        // Fan-out 1..3 per keyword.
        assert!(!reduced[0].features.is_empty());
        assert!(reduced[0].features.len() <= 6);
    }

    #[test]
    fn dimensionality_reporting() {
        let scores = vec![
            score("a", "k1", 3.0),
            score("a", "k2", 1.5),
            score("a", "k3", -0.5),
        ];
        assert_eq!(retained_dimensions("a", &Scheme::All, &scores), 3);
        assert_eq!(
            retained_dimensions("a", &Scheme::KeZ { threshold: 1.28 }, &scores),
            2
        );
        assert_eq!(
            retained_dimensions("a", &Scheme::KeZ { threshold: 2.56 }, &scores),
            1
        );
        assert_eq!(retained_dimensions("a", &Scheme::FEx, &scores), 2000);
    }

    #[test]
    fn lift_coverage_is_monotone_for_a_perfect_model() {
        // Model: predicts by presence of "hot"; data: hot => click.
        let mut examples = Vec::new();
        for i in 0..20 {
            examples.push(ex(i, "a", 1, &[("hot", 1.0)]));
        }
        for i in 20..100 {
            examples.push(ex(i, "a", 0, &[("cold", 1.0)]));
        }
        let scores = vec![score("a", "hot", 9.0), score("a", "cold", -9.0)];
        let train_map = by_ad(&examples);
        let scheme = Scheme::KeZ { threshold: 1.28 };
        let models = train_models(&train_map, &scheme, &scores, &LrConfig::default());
        let curve = lift_coverage(
            "a",
            &models["a"],
            &examples,
            &scheme,
            &scores,
            &[0.1, 0.2, 0.5, 1.0],
        );
        // 20% of examples are clicks: at coverage 0.1 and 0.2 the top
        // predictions are all clicks; lift decays to 0 at full coverage.
        assert!(curve[0].ctr > 0.9);
        assert!(curve[0].lift > 0.7);
        assert!(curve[3].lift.abs() < 1e-9);
        assert!(curve[0].lift >= curve[1].lift && curve[1].lift >= curve[3].lift);
    }

    #[test]
    fn keyword_set_lift_fig21_shape() {
        let mut examples = Vec::new();
        // pos keyword users click 50%, neg keyword users 0%, plain 10%.
        for i in 0..40 {
            examples.push(ex(i, "a", u8::from(i % 2 == 0), &[("pos", 1.0)]));
        }
        for i in 0..40 {
            examples.push(ex(100 + i, "a", 0, &[("neg", 1.0)]));
        }
        for i in 0..20 {
            examples.push(ex(200 + i, "a", u8::from(i % 10 == 0), &[]));
        }
        let pos: FxHashSet<String> = ["pos".to_string()].into_iter().collect();
        let neg: FxHashSet<String> = ["neg".to_string()].into_iter().collect();
        let rows = keyword_set_lift(&examples, &pos, &neg);
        assert_eq!(rows.len(), 5);
        let all = &rows[0];
        let pos_row = &rows[1];
        let neg_row = &rows[2];
        assert!(
            pos_row.lift_pct > 50.0,
            "positive subset lifts: {pos_row:?}"
        );
        assert!(neg_row.lift_pct < 0.0, "negative subset drops: {neg_row:?}");
        assert_eq!(all.examples, 100);
    }
}
