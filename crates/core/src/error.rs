//! Error type for the TiMR framework.

use mapreduce::MrError;
use std::fmt;
use temporal::TemporalError;

/// Errors raised while annotating, compiling, or running TiMR jobs.
#[derive(Debug)]
pub enum TimrError {
    /// Invalid plan annotation (mismatched fragment keys, shared interior
    /// nodes, unknown columns…).
    Annotation(String),
    /// Fragmentation or stage compilation failed.
    Compile(String),
    /// Propagated DSMS error.
    Temporal(TemporalError),
    /// Propagated map-reduce error.
    MapReduce(MrError),
}

impl fmt::Display for TimrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimrError::Annotation(m) => write!(f, "annotation error: {m}"),
            TimrError::Compile(m) => write!(f, "compile error: {m}"),
            TimrError::Temporal(e) => write!(f, "{e}"),
            TimrError::MapReduce(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TimrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimrError::Temporal(e) => Some(e),
            TimrError::MapReduce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TemporalError> for TimrError {
    fn from(e: TemporalError) -> Self {
        TimrError::Temporal(e)
    }
}

impl From<MrError> for TimrError {
    fn from(e: MrError) -> Self {
        TimrError::MapReduce(e)
    }
}

impl From<relation::RelationError> for TimrError {
    fn from(e: relation::RelationError) -> Self {
        TimrError::Temporal(TemporalError::Relation(e))
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TimrError>;
