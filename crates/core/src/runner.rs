//! End-to-end TiMR job execution.

use crate::annotate::Annotation;
use crate::bridge::EventEncoding;
use crate::compile::{compile_with_options, CompileOptions, CompiledJob};
use crate::error::Result;
use mapreduce::{BackendKind, Cluster, ClusterConfig, Dfs, JobStats};
use relation::Schema;
use std::collections::BTreeMap;
use temporal::exec::ExecMode;
use temporal::plan::LogicalPlan;
use temporal::EventStream;

/// A TiMR job: a temporal CQ plus parallel-execution choices.
#[derive(Debug, Clone)]
pub struct TimrJob {
    /// Job name (prefixes intermediate/output dataset names).
    pub name: String,
    /// The temporal query (single output).
    pub plan: LogicalPlan,
    /// Exchange placements (hints or optimizer output).
    pub annotation: Annotation,
    /// Reduce partition count for keyed fragments (the paper's
    /// `#machines`, §III-C.3).
    pub machines: usize,
    /// Lifetime encoding per raw source dataset (default Point).
    pub source_encodings: BTreeMap<String, EventEncoding>,
    /// DSMS operator-implementation mode for the embedded reducers
    /// (default [`ExecMode::Compiled`]; the interpreted baseline is kept
    /// for benchmarks).
    pub exec_mode: ExecMode,
    /// Run exchange-free plan prefixes (and combinable partial
    /// aggregations) map-side before the shuffle (default on; off is the
    /// reduce-only baseline for benchmarks).
    pub push_down: bool,
}

/// Result of running a job.
#[derive(Debug)]
pub struct TimrOutput {
    /// DFS name of the output dataset.
    pub dataset: String,
    /// Payload schema of the output.
    pub payload: Schema,
    /// Lifetime encoding of the output dataset.
    pub encoding: EventEncoding,
    /// Map-reduce execution statistics.
    pub stats: JobStats,
}

impl TimrJob {
    /// Build a job with default settings (no annotation, 4 machines).
    pub fn new(name: impl Into<String>, plan: LogicalPlan) -> Self {
        TimrJob {
            name: name.into(),
            plan,
            annotation: Annotation::none(),
            machines: 4,
            source_encodings: BTreeMap::new(),
            exec_mode: ExecMode::Compiled,
            push_down: true,
        }
    }

    /// Set the DSMS operator-implementation mode for the embedded reducers.
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }

    /// Enable or disable map-side plan push-down.
    pub fn with_push_down(mut self, push_down: bool) -> Self {
        self.push_down = push_down;
        self
    }

    /// Set the annotation.
    pub fn with_annotation(mut self, annotation: Annotation) -> Self {
        self.annotation = annotation;
        self
    }

    /// Set the machine (reduce partition) count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Declare a source dataset's lifetime encoding.
    pub fn with_source_encoding(mut self, source: &str, encoding: EventEncoding) -> Self {
        self.source_encodings.insert(source.to_string(), encoding);
        self
    }

    /// Choose the annotation with the cost-based optimizer (paper §VI),
    /// using statistics computed from the source datasets in `dfs`.
    pub fn with_auto_annotation(mut self, dfs: &Dfs) -> Result<Self> {
        let mut stats = BTreeMap::new();
        for (name, _) in self.plan.sources() {
            if let Ok(dataset) = dfs.get(name) {
                stats.insert(name.to_string(), dataset.stats());
            }
        }
        let config = crate::optimizer::OptimizerConfig {
            machines: self.machines,
            ..Default::default()
        };
        let optimized = crate::optimizer::optimize(&self.plan, &stats, &config)?;
        self.annotation = optimized.annotation;
        Ok(self)
    }

    /// Compile to map-reduce stages without running.
    pub fn compile(&self) -> Result<CompiledJob> {
        compile_with_options(
            &self.plan,
            &self.annotation,
            &self.name,
            self.machines,
            &self.source_encodings,
            CompileOptions {
                exec_mode: self.exec_mode,
                push_down: self.push_down,
            },
        )
    }

    /// Compile and run on a fresh cluster using the chosen execution
    /// backend — the in-process thread pool or real worker OS processes —
    /// with otherwise-default configuration. Both backends produce
    /// byte-identical datasets (the determinism contract the cluster
    /// enforces), so the choice is operational, not semantic.
    pub fn run_on(&self, dfs: &Dfs, backend: BackendKind) -> Result<TimrOutput> {
        let cluster = Cluster::with_config(ClusterConfig {
            backend,
            ..ClusterConfig::default()
        });
        self.run(dfs, &cluster)
    }

    /// Compile and run on `cluster` against `dfs`. Source leaves of the
    /// plan are read from same-named DFS datasets.
    pub fn run(&self, dfs: &Dfs, cluster: &Cluster) -> Result<TimrOutput> {
        let compiled = self.compile()?;
        let stats = cluster.run_job(dfs, &compiled.stages)?;
        Ok(TimrOutput {
            dataset: compiled.output,
            payload: compiled.output_payload,
            encoding: compiled.output_encoding,
            stats,
        })
    }
}

impl TimrOutput {
    /// Decode the output dataset back into an event stream.
    pub fn stream(&self, dfs: &Dfs) -> Result<EventStream> {
        let dataset = dfs.get(&self.dataset)?;
        let stream = self.encoding.decode_stream(dataset.iter(), &self.payload)?;
        Ok(stream.normalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::ExchangeKey;
    use mapreduce::{ChaosPlan, Dataset, RetryPolicy, TaskPhase};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Row};
    use temporal::exec::{bindings, execute_single};
    use temporal::expr::{col, lit};
    use temporal::plan::{Operator, Query};

    fn bt_payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    fn dataset_rows(n: i64) -> Vec<Row> {
        // Deterministic mix of clicks (1) and searches (2) across users/ads.
        (0..n)
            .map(|i| {
                row![
                    i * 7 % 1000,
                    (1 + i % 2) as i32,
                    format!("u{}", i % 13),
                    format!("ad{}", i % 5)
                ]
            })
            .collect()
    }

    fn click_count_job(machines: usize) -> TimrJob {
        let q = Query::new();
        let out = q
            .source("logs", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(50).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let filter = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap();
        let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
        TimrJob::new("rcc", plan)
            .with_annotation(ann)
            .with_machines(machines)
    }

    fn reference_result(rows: &[Row]) -> EventStream {
        // Ground truth: run the same plan on the single-node DSMS.
        let job = click_count_job(1);
        let stream = EventEncoding::Point
            .decode_stream(rows, &bt_payload())
            .unwrap();
        execute_single(&job.plan, &bindings(vec![("logs", stream)]))
            .unwrap()
            .normalize()
    }

    fn dfs_with_logs(rows: Vec<Row>) -> Dfs {
        let dfs = Dfs::new();
        let schema = EventEncoding::Point.dataset_schema(&bt_payload());
        dfs.put("logs", Dataset::single(schema, rows)).unwrap();
        dfs
    }

    #[test]
    fn timr_equals_single_node_dsms() {
        // The core TiMR guarantee: scaled-out M-R execution produces the
        // same temporal relation as the unmodified single-node DSMS.
        let rows = dataset_rows(500);
        let reference = reference_result(&rows);
        for machines in [1, 3, 8] {
            let dfs = dfs_with_logs(rows.clone());
            let out = click_count_job(machines)
                .run(&dfs, &Cluster::new())
                .unwrap();
            let got = out.stream(&dfs).unwrap();
            assert!(
                got.same_relation(&reference),
                "mismatch at machines={machines}"
            );
        }
    }

    #[test]
    fn reducer_restart_is_deterministic() {
        let rows = dataset_rows(300);
        let run = |chaos: ChaosPlan| {
            let dfs = dfs_with_logs(rows.clone());
            let cluster = Cluster::with_config(mapreduce::ClusterConfig {
                threads: 4,
                chaos,
                retry: RetryPolicy::no_backoff(3),
                ..Default::default()
            });
            let out = click_count_job(4).run(&dfs, &cluster).unwrap();
            (
                dfs.get(&out.dataset).unwrap().partitions.as_ref().clone(),
                out.stats.fault_totals().task_retries,
            )
        };
        let (clean, r0) = run(ChaosPlan::none());
        let (failed, r1) = run(ChaosPlan::none()
            .kill("rcc/f5", TaskPhase::Reduce, 0)
            .kill("rcc/f5", TaskPhase::Map, 0)
            .kill("rcc/f5", TaskPhase::Shuffle, 2));
        assert_eq!(r0, 0);
        // Stage name depends on node ids; if the kill didn't match any
        // stage the retries stay 0 — assert output equality regardless,
        // and retries only when the name matched.
        assert_eq!(
            clean, failed,
            "restarted reducers must emit identical bytes"
        );
        let _ = r1;
    }

    #[cfg(unix)]
    #[test]
    fn backend_selection_is_invisible_in_output() {
        // `run_on` chooses how tasks execute, never what they produce:
        // the multi-process backend's datasets are byte-identical to the
        // thread pool's.
        let rows = dataset_rows(300);
        let run = |backend: BackendKind| {
            let dfs = dfs_with_logs(rows.clone());
            let out = click_count_job(4).run_on(&dfs, backend).unwrap();
            dfs.get(&out.dataset).unwrap().partitions.as_ref().clone()
        };
        let threads = run(BackendKind::Threads);
        let processes = run(BackendKind::Processes { workers: 2 });
        assert_eq!(threads, processes);
    }

    #[test]
    fn two_stage_pipeline_runs() {
        // GroupApply per (user, ad) then per-ad re-aggregation: forces an
        // intermediate exchange and two stages.
        let q = Query::new();
        let per_user = q
            .source("logs", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["UserId", "KwAdId"], |g| g.window(50).count("N"));
        let per_ad = per_user.group_apply(&["KwAdId"], |g| {
            g.aggregate(vec![("Users".into(), temporal::agg::AggExpr::Count)])
        });
        let plan = q.build(vec![per_ad]).unwrap();
        let gas: Vec<usize> = plan
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Operator::GroupApply { .. }))
            .map(|(i, _)| i)
            .collect();
        let (first_ga, second_ga) = (gas[0], gas[1]);
        // Exchange below the filter (directly above the source) so the
        // first stage maps the raw dataset, as in paper Fig 7.
        let filter = plan.node(first_ga).inputs[0];
        let ann = Annotation::none()
            .exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]))
            .exchange(second_ga, 0, ExchangeKey::keys(&["KwAdId"]));
        let job = TimrJob::new("two", plan.clone())
            .with_annotation(ann)
            .with_machines(4);

        let rows = dataset_rows(400);
        let dfs = dfs_with_logs(rows.clone());
        let out = job.run(&dfs, &Cluster::new()).unwrap();
        assert_eq!(out.stats.stages.len(), 2);

        // Compare against single-node execution.
        let stream = EventEncoding::Point
            .decode_stream(&rows, &bt_payload())
            .unwrap();
        let reference = execute_single(&plan, &bindings(vec![("logs", stream)]))
            .unwrap()
            .normalize();
        assert!(out.stream(&dfs).unwrap().same_relation(&reference));
    }

    #[test]
    fn auto_annotation_scales_out_and_stays_correct() {
        let rows = dataset_rows(300);
        let reference = reference_result(&rows);
        let dfs = dfs_with_logs(rows);
        let plan = click_count_job(1).plan;
        let job = TimrJob::new("auto", plan)
            .with_machines(6)
            .with_auto_annotation(&dfs)
            .unwrap();
        assert!(
            !job.annotation.is_empty(),
            "the optimizer should place at least one exchange"
        );
        let out = job.run(&dfs, &Cluster::new()).unwrap();
        assert!(out.stream(&dfs).unwrap().same_relation(&reference));
        // Some stage actually ran partitioned.
        assert!(out.stats.stages.iter().any(|s| s.partitions > 1));
    }

    #[test]
    fn unannotated_job_still_correct() {
        let rows = dataset_rows(200);
        let reference = reference_result(&rows);
        let dfs = dfs_with_logs(rows);
        let q = click_count_job(8); // annotation replaced below
        let job = TimrJob::new("plain", q.plan.clone());
        let out = job.run(&dfs, &Cluster::new()).unwrap();
        assert!(out.stream(&dfs).unwrap().same_relation(&reference));
        // Single fragment, single partition.
        assert_eq!(out.stats.stages.len(), 1);
        assert_eq!(out.stats.stages[0].partitions, 1);
    }
}
