//! Vendored minimal `criterion` stand-in.
//!
//! Provides the API surface the workspace's `harness = false` benches
//! use — `Criterion`, `benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a plain timing loop instead of the real statistical machinery.
//! Each benchmark prints its median iteration time (and throughput when
//! declared) to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs closures under timing.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warm-up, then `sample_size` timed runs; report the median.
        black_box(f());
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        last: None,
    };
    f(&mut bencher);
    match bencher.last {
        Some(t) => {
            let rate = throughput.map(|tp| {
                let per_sec = |n: u64| n as f64 / t.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Elements(n) => format!("  ({:.0} elem/s)", per_sec(n)),
                    Throughput::Bytes(n) => format!("  ({:.0} B/s)", per_sec(n)),
                }
            });
            println!("bench {label:<40} {:>12.3?}{}", t, rate.unwrap_or_default());
        }
        None => println!("bench {label:<40} (no measurement)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    );

    #[test]
    fn groups_run() {
        benches();
        configured();
    }
}
