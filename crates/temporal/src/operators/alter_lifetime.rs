//! AlterLifetime: windowing and lifetime adjustment (paper §II-A.2, Fig 3).

use crate::batch::EventBatch;
use crate::error::Result;
use crate::plan::LifetimeOp;
use crate::stream::EventStream;
use crate::time::{ceil_to_grid, Lifetime};

/// The lifetime transformation for one event; `None` drops the event.
/// Shared by the in-place operator below and the interpreted baseline so
/// both modes have identical window semantics by construction.
pub(crate) fn transform(lt: Lifetime, op: &LifetimeOp) -> Option<Lifetime> {
    Some(match op {
        // Sliding window: the event influences output for `w` ticks after
        // its timestamp.
        LifetimeOp::Window(w) => Lifetime::new(lt.start, lt.start + w),
        // Hopping window: quantize so snapshots only change at grid points.
        // An event at `t` must be active at exactly the grid instants `T`
        // with `T - width < t <= T`; the smallest is `ceil(t / hop) * hop`
        // and the end is the first grid point at or after `t + width`.
        LifetimeOp::Hop { hop, width } => {
            let start = ceil_to_grid(lt.start, *hop);
            let end = ceil_to_grid(lt.start + width, *hop);
            if start >= end {
                // Can only happen for width < hop remainders; the event
                // falls between report points and is dropped.
                return None;
            }
            Lifetime::new(start, end)
        }
        LifetimeOp::Shift(d) => Lifetime::new(lt.start + d, lt.end + d),
        LifetimeOp::ExtendBack(d) => Lifetime::new(lt.start - d, lt.end),
        LifetimeOp::ToPoint => Lifetime::point(lt.start),
    })
}

/// Apply a lifetime transformation to every event. A uniquely-owned input
/// has its lifetimes patched in place (no payload copies); shared storage
/// is rebuilt, cloning only the surviving events.
pub fn alter_lifetime(mut input: EventStream, op: &LifetimeOp) -> Result<EventStream> {
    if !input.is_unique() {
        let events = input
            .events()
            .iter()
            .filter_map(|e| transform(e.lifetime, op).map(|lt| e.with_lifetime(lt)))
            .collect();
        return Ok(EventStream::new(input.schema().clone(), events));
    }
    input
        .events_mut()
        .retain_mut(|e| match transform(e.lifetime, op) {
            Some(lt) => {
                e.lifetime = lt;
                true
            }
            None => false,
        });
    Ok(input)
}

/// Columnar lifetime rewrite: the two lifetime vectors are patched in
/// place with no payload traffic at all; only a hopping window (the one op
/// that can drop events) compacts the batch. Byte-identical to
/// [`alter_lifetime`] on the equivalent row stream.
pub fn alter_lifetime_batch(mut input: EventBatch, op: &LifetimeOp) -> Result<EventBatch> {
    let n = input.len();
    let mut keep = vec![true; n];
    {
        let (vt, ve) = input.times_mut();
        for i in 0..n {
            match transform(Lifetime::new(vt[i], ve[i]), op) {
                Some(lt) => {
                    vt[i] = lt.start;
                    ve[i] = lt.end;
                }
                None => keep[i] = false,
            }
        }
    }
    if keep.contains(&false) {
        input.retain(&keep);
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn stream(times: &[i64]) -> EventStream {
        let schema = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        EventStream::new(
            schema,
            times.iter().map(|&t| Event::point(t, row![t])).collect(),
        )
    }

    #[test]
    fn sliding_window_sets_re() {
        // Paper Fig 3: window w=3 makes a reading at t active on [t, t+3).
        let out = alter_lifetime(stream(&[2, 4]), &LifetimeOp::Window(3)).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(2, 5));
        assert_eq!(out.events()[1].lifetime, Lifetime::new(4, 7));
    }

    #[test]
    fn hopping_window_quantizes_to_grid() {
        // hop=4, width=6: event at t=1 is active at the single grid report
        // T=4 (since 4-6 < 1 <= 4 but 8-6 > 1): lifetime [4, 8).
        let out = alter_lifetime(stream(&[1]), &LifetimeOp::Hop { hop: 4, width: 6 }).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(4, 8));
        // Event exactly on the grid is active at T=4 and T=8: [4, 12).
        let out = alter_lifetime(stream(&[4]), &LifetimeOp::Hop { hop: 4, width: 6 }).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(4, 12));
    }

    #[test]
    fn hopping_window_drops_between_report_points() {
        // hop=10, width=2: an event at t=3 influences no grid report
        // (next report T=10, but 10-2=8 > 3) and must vanish.
        let out = alter_lifetime(stream(&[3]), &LifetimeOp::Hop { hop: 10, width: 2 }).unwrap();
        assert!(out.is_empty());
        // t=9 influences T=10: [10, 20)? end = ceil(9+2)=20? No: ceil(11,10)=20.
        let out = alter_lifetime(stream(&[9]), &LifetimeOp::Hop { hop: 10, width: 2 }).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(10, 20));
    }

    #[test]
    fn shift_and_extend_back() {
        let out = alter_lifetime(stream(&[10]), &LifetimeOp::Shift(5)).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(15, 16));
        // GenTrainData (Fig 12): clicks extended back d=5 cover [t-5, t+1).
        let out = alter_lifetime(stream(&[10]), &LifetimeOp::ExtendBack(5)).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::new(5, 11));
    }

    #[test]
    fn to_point_collapses_intervals() {
        let schema = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        let input = EventStream::new(schema, vec![Event::interval(3, 99, row![0i64])]);
        let out = alter_lifetime(input, &LifetimeOp::ToPoint).unwrap();
        assert_eq!(out.events()[0].lifetime, Lifetime::point(3));
    }

    #[test]
    fn shared_input_is_left_untouched() {
        // Copy-on-write: altering a stream another consumer still holds
        // must not mutate the shared storage.
        let original = stream(&[1, 2]);
        let shared = original.clone();
        let out = alter_lifetime(shared, &LifetimeOp::Shift(100)).unwrap();
        assert_eq!(original.events()[0].lifetime, Lifetime::point(1));
        assert_eq!(out.events()[0].lifetime, Lifetime::new(101, 102));
    }
}
