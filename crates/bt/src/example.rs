//! Training/test examples: `⟨x = UBP, y = click or not⟩` (paper §IV-A).

use rustc_hash::FxHashMap;

/// A sparse user-behavior-profile feature vector: feature name → weight
/// (the count of that keyword in the τ window, per Definition 1).
pub type FeatureVector = FxHashMap<String, f64>;

/// One labelled example for one ad class.
#[derive(Debug, Clone)]
pub struct Example {
    /// Example timestamp (the impression instant).
    pub time: i64,
    /// User id.
    pub user: String,
    /// Ad class.
    pub ad: String,
    /// 1 = clicked, 0 = non-click.
    pub label: u8,
    /// Sparse UBP at `time`.
    pub features: FeatureVector,
}

impl Example {
    /// Restrict the feature vector to `keep` (feature selection), leaving
    /// other dimensions out of the model entirely.
    pub fn project_features(&self, keep: &dyn Fn(&str) -> bool) -> Example {
        Example {
            time: self.time,
            user: self.user.clone(),
            ad: self.ad.clone(),
            label: self.label,
            features: self
                .features
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Map feature names through `f`, summing weights that collide (used
    /// by the F-Ex category baseline).
    pub fn map_features(&self, f: &dyn Fn(&str) -> Vec<String>) -> Example {
        let mut features: FeatureVector = FxHashMap::default();
        for (k, v) in &self.features {
            for mapped in f(k) {
                *features.entry(mapped).or_insert(0.0) += v;
            }
        }
        Example {
            time: self.time,
            user: self.user.clone(),
            ad: self.ad.clone(),
            label: self.label,
            features,
        }
    }
}

/// Mean number of sparse entries per example — the paper's §V-D memory
/// metric ("average number of entries in the sparse representation for the
/// UBPs").
pub fn mean_profile_entries(examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    examples.iter().map(|e| e.features.len()).sum::<usize>() as f64 / examples.len() as f64
}

/// Overall CTR of an example set.
pub fn ctr(examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    examples.iter().filter(|e| e.label == 1).count() as f64 / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(label: u8, feats: &[(&str, f64)]) -> Example {
        Example {
            time: 0,
            user: "u".into(),
            ad: "a".into(),
            label,
            features: feats.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn project_keeps_only_selected() {
        let e = ex(1, &[("icarly", 2.0), ("bg0", 5.0)]);
        let kept = e.project_features(&|k| k == "icarly");
        assert_eq!(kept.features.len(), 1);
        assert_eq!(kept.features["icarly"], 2.0);
    }

    #[test]
    fn map_features_sums_collisions() {
        let e = ex(0, &[("a", 1.0), ("b", 2.0)]);
        let mapped = e.map_features(&|_| vec!["cat".to_string()]);
        assert_eq!(mapped.features["cat"], 3.0);
    }

    #[test]
    fn stats() {
        let exs = vec![ex(1, &[("a", 1.0)]), ex(0, &[("a", 1.0), ("b", 1.0)])];
        assert_eq!(mean_profile_entries(&exs), 1.5);
        assert_eq!(ctr(&exs), 0.5);
        assert_eq!(ctr(&[]), 0.0);
    }
}
