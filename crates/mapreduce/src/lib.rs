//! A deterministic map-reduce runtime over an in-memory distributed file
//! system.
//!
//! This crate stands in for the paper's Cosmos + SCOPE/Dryad cluster
//! (paper §II-B): datasets live in a [`dfs::Dfs`] as partitioned row files;
//! jobs are DAGs of [`job::Stage`]s, each with a *map* phase (a
//! [`job::Partitioner`] assigning rows to reduce partitions) and a *reduce*
//! phase (a [`job::Reducer`] invoked once per partition). Stages run their
//! partitions on a local thread pool ([`cluster::Cluster`]).
//!
//! Faithfulness properties the TiMR layer depends on:
//!
//! - **Determinism.** Partition placement is a pure function of the key
//!   ([`relation::hash`]), shuffle preserves input order, and reducers are
//!   pure functions of their partition — so re-running any task yields
//!   byte-identical output. This is the map-reduce failure-handling model
//!   the paper leans on (§III-C.1), and the seeded [`chaos::ChaosPlan`]
//!   injects panics, transient kills, data corruption, and delays into any
//!   phase to prove it: tasks run under `catch_unwind` in a retry loop
//!   ([`chaos::RetryPolicy`]), extents and shuffle partitions carry
//!   length + checksum frames ([`chaos::ExtentFrame`]), and detected
//!   corruption triggers deterministic re-execution of the producing work.
//! - **Native binary extents.** Stage boundaries — DFS datasets, shuffle
//!   partition chunks, persisted files — carry framed binary columnar
//!   extents ([`relation::extent`]) with per-column FxHash integrity
//!   frames; the text codec survives as a debug writer and legacy read
//!   fallback. Under `ClusterConfig::memory_budget_bytes` the shuffle
//!   seals bounded chunks and spills them to disk, so jobs whose shuffle
//!   exceeds RAM still complete with byte-identical output.
//! - **Cost visibility.** Every stage reports rows mapped, bytes shuffled,
//!   per-partition reduce times, real wall time, and a *simulated makespan*
//!   for an arbitrary machine count (partitions scheduled greedily onto
//!   `machines` workers plus a per-task overhead). The simulated makespan is
//!   what the span-width experiment (paper Fig 16) sweeps, since a laptop
//!   cannot time-share 150 physical machines.

pub mod backend;
pub mod chaos;
pub mod cluster;
pub mod dfs;
pub mod error;
pub mod job;
pub mod persist;
#[cfg(unix)]
pub(crate) mod process;
pub mod stats;
pub mod transport;

pub use backend::{BackendKind, SpeculationPolicy};
pub use chaos::{ChaosPlan, ExtentFrame, FaultKind, RetryPolicy};
pub use cluster::{Cluster, ClusterConfig};
pub use dfs::{Dataset, Dfs, StoredExtent};
pub use error::{MrError, Result, TaskError, TaskPhase};
pub use job::{
    Mapper, MapperContext, MapperRef, Partitioner, ReduceInput, Reducer, ReducerContext, Stage,
};
pub use stats::{FaultTotals, JobStats, MapTotals, StageStats};
