//! A StreamSQL dialect front-end.
//!
//! The paper's user surface is "a temporal language (e.g., LINQ or
//! StreamSQL)" (§III). The fluent [`crate::Query`] builder is our LINQ
//! analogue; this module is the StreamSQL analogue: a small declarative
//! dialect compiled to the same [`crate::LogicalPlan`]s, so textual
//! queries run identically on the embedded DSMS, on TiMR, and on the
//! incremental executor.
//!
//! ```
//! use temporal::streamsql::parse_query;
//!
//! // Example 1 (RunningClickCount) as StreamSQL:
//! let plan = parse_query(
//!     "SELECT AdId, COUNT(*) AS ClickCount \
//!      FROM clicks(AdId STRING, StreamId INT) \
//!      WHERE StreamId = 1 \
//!      GROUP BY AdId \
//!      WINDOW 6 HOURS",
//! ).unwrap();
//! assert_eq!(plan.roots().len(), 1);
//! ```
//!
//! Grammar (informal):
//!
//! ```text
//! query    := select (UNION ALL select)*
//! select   := SELECT items FROM source [WHERE expr]
//!             [GROUP BY ident, ...] [window] [HAVING expr]
//! items    := * | item, ...       item := expr [AS ident] | agg
//! agg      := COUNT(*) | SUM(expr) | MIN(expr) | MAX(expr) | AVG(expr)
//! source   := name(col TYPE, ...) | ( query ) [AS name]
//! window   := WINDOW dur | WINDOW dur EVERY dur     dur := n unit
//! unit     := TICKS|SECONDS|MINUTES|HOURS|DAYS (singular accepted)
//! ```
//!
//! Sources declare their payload schema inline (`name(col TYPE, …)`)
//! because StreamSQL queries are self-contained texts with no ambient
//! catalog; a nested `(query) AS name` pipes one select into another.

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{Duration as SqlDuration, Query as SqlQuery, Select, SelectItem, SourceRef};
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::lower;
pub use parser::parse;

use crate::error::Result;
use crate::plan::LogicalPlan;

/// Parse a StreamSQL text into an executable CQ plan.
pub fn parse_query(text: &str) -> Result<LogicalPlan> {
    let tokens = tokenize(text)?;
    let ast = parse(&tokens)?;
    lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{bindings, execute_single};
    use crate::{Event, EventStream, HOUR};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn click_schema() -> Schema {
        Schema::new(vec![
            Field::new("AdId", ColumnType::Str),
            Field::new("StreamId", ColumnType::Int),
        ])
    }

    fn clicks() -> EventStream {
        EventStream::new(
            click_schema(),
            vec![
                Event::point(10, row!["a", 1i32]),
                Event::point(20, row!["a", 1i32]),
                Event::point(30, row!["a", 2i32]),
                Event::point(40, row!["b", 1i32]),
            ],
        )
    }

    #[test]
    fn running_click_count_in_streamsql() {
        let plan = parse_query(
            "SELECT AdId, COUNT(*) AS ClickCount \
             FROM clicks(AdId STRING, StreamId INT) \
             WHERE StreamId = 1 \
             GROUP BY AdId \
             WINDOW 100 TICKS",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())]))
            .unwrap()
            .normalize();
        assert_eq!(
            out.events(),
            &[
                Event::interval(10, 20, row!["a", 1i64]),
                Event::interval(20, 110, row!["a", 2i64]),
                Event::interval(40, 140, row!["b", 1i64]),
                Event::interval(110, 120, row!["a", 1i64]),
            ]
        );
    }

    #[test]
    fn projection_and_arithmetic() {
        let plan = parse_query(
            "SELECT AdId AS Ad, StreamId * 10 + 1 AS X \
             FROM clicks(AdId STRING, StreamId INT)",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())])).unwrap();
        assert_eq!(out.schema().names(), vec!["Ad", "X"]);
        assert_eq!(out.events()[0].payload, row!["a", 11i64]);
    }

    #[test]
    fn select_star_passes_through() {
        let plan =
            parse_query("SELECT * FROM clicks(AdId STRING, StreamId INT) WHERE StreamId = 1")
                .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())])).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema(), &click_schema());
    }

    #[test]
    fn hopping_window_and_having() {
        // Bot-elimination shape: users with > 1 click per 100-tick window,
        // refreshed every 50 ticks.
        let plan = parse_query(
            "SELECT AdId, COUNT(*) AS N \
             FROM clicks(AdId STRING, StreamId INT) \
             GROUP BY AdId \
             WINDOW 100 TICKS EVERY 50 TICKS \
             HAVING N > 1",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())]))
            .unwrap()
            .normalize();
        // Only "a" ever reaches 2 in a window.
        assert!(out
            .events()
            .iter()
            .all(|e| e.payload.get(0).as_str() == Some("a")));
        assert!(!out.is_empty());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = parse_query(
            "SELECT COUNT(*) AS N, SUM(StreamId) AS S \
             FROM clicks(AdId STRING, StreamId INT) WINDOW 1000 TICKS",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())]))
            .unwrap()
            .normalize();
        // Final snapshot covers all four events.
        assert!(out.events().iter().any(|e| e.payload == row![4i64, 5i64]));
    }

    #[test]
    fn extended_aggregates() {
        // Distinct ads and the spread of StreamId values per window.
        let plan = parse_query(
            "SELECT COUNT_DISTINCT(AdId) AS Ads, STDDEV(StreamId) AS Spread \
             FROM clicks(AdId STRING, StreamId INT) WINDOW 1000 TICKS",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())]))
            .unwrap()
            .normalize();
        // Final snapshot: ads {a, b}; stream ids {1,1,2,1} -> stddev
        // sqrt(3/16).
        let last = out
            .events()
            .iter()
            .find(|e| e.payload.get(0).as_long() == Some(2))
            .expect("snapshot with both ads");
        let spread = last.payload.get(1).as_double().unwrap();
        assert!(
            (spread - (3.0f64 / 16.0).sqrt()).abs() < 1e-12,
            "spread {spread}"
        );
    }

    #[test]
    fn union_all_of_selects() {
        let plan = parse_query(
            "SELECT AdId FROM clicks(AdId STRING, StreamId INT) WHERE StreamId = 1 \
             UNION ALL \
             SELECT AdId FROM clicks(AdId STRING, StreamId INT) WHERE StreamId = 2",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())])).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nested_subquery() {
        let plan = parse_query(
            "SELECT Ad, COUNT(*) AS N FROM \
               (SELECT AdId AS Ad FROM clicks(AdId STRING, StreamId INT) WHERE StreamId = 1) \
             AS only_clicks \
             GROUP BY Ad WINDOW 1000 TICKS",
        )
        .unwrap();
        let out = execute_single(&plan, &bindings(vec![("clicks", clicks())]))
            .unwrap()
            .normalize();
        assert!(out.events().iter().any(|e| e.payload == row!["a", 2i64]));
    }

    #[test]
    fn duration_units() {
        let plan = parse_query(
            "SELECT AdId, COUNT(*) AS N FROM c(AdId STRING) GROUP BY AdId WINDOW 6 HOURS",
        )
        .unwrap();
        assert_eq!(plan.max_window_extent(), 6 * HOUR);
        let plan = parse_query(
            "SELECT AdId, COUNT(*) AS N FROM c(AdId STRING) GROUP BY AdId WINDOW 1 DAY",
        )
        .unwrap();
        assert_eq!(plan.max_window_extent(), 24 * HOUR);
    }

    #[test]
    fn useful_errors() {
        for (sql, needle) in [
            ("SELECT FROM x(A INT)", "expected"),
            ("SELECT A x(A INT)", "expected FROM"),
            ("SELECT A FROM x(A INT) WINDOW 5 PARSECS", "duration unit"),
            ("SELECT COUNT(*) AS N, A FROM x(A INT)", "GROUP BY"),
            ("SELECT B FROM x(A INT)", "unknown column"),
            ("SELECT A FROM x(A INT) WHERE 'lit'", "bool"),
        ] {
            let err = parse_query(sql).unwrap_err().to_string();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "query `{sql}` gave `{err}`, expected to contain `{needle}`"
            );
        }
    }
}
