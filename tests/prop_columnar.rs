//! Property tests for the columnar execution path (PR 4): vectorized
//! expression kernels and columnar operators must be *observably
//! identical* — values, selection, and error cases — to the frozen
//! interpreted baseline and the compiled row path, because the
//! repeatability guarantee of restarted reducers (paper §III-C.1) makes
//! every execution mode's output part of the byte-comparison contract.
//!
//! The row generator flips each column to Null independently, so batches
//! are routinely null-heavy and the validity-bitmap paths get as much
//! traffic as the dense ones; `0..` stream lengths include empty batches.

use proptest::prelude::*;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{ColumnBatch, Row, Schema, Value};
use timr_suite::temporal::operators::{
    alter_lifetime, alter_lifetime_batch, filter, filter_batch, project, project_batch,
};
use timr_suite::temporal::plan::LifetimeOp;
use timr_suite::temporal::{
    col, lit, CompiledExpr, Event, EventBatch, EventStream, Expr, Lifetime,
};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("I", ColumnType::Int),
        Field::new("L", ColumnType::Long),
        Field::new("D", ColumnType::Double),
        Field::new("S", ColumnType::Str),
        Field::new("B", ColumnType::Bool),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        -1000i32..1000,
        -10_000i64..10_000,
        -1e6f64..1e6,
        0u8..3,
        any::<bool>(),
        0u8..32,
    )
        .prop_map(|(i, l, d, s, b, nulls)| {
            let mut vals = vec![
                Value::Int(i),
                Value::Long(l),
                Value::Double(d),
                Value::from(format!("u{s}")),
                Value::Bool(b),
            ];
            for (k, v) in vals.iter_mut().enumerate() {
                if nulls & (1 << k) != 0 {
                    *v = Value::Null;
                }
            }
            Row::new(vals)
        })
}

fn apply_op(a: Expr, b: Expr, op: usize) -> Expr {
    match op {
        0 => a.add(b),
        1 => a.sub(b),
        2 => a.mul(b),
        3 => a.div(b),
        4 => a.eq(b),
        5 => a.ne(b),
        6 => a.lt(b),
        7 => a.le(b),
        8 => a.gt(b),
        9 => a.ge(b),
        10 => a.and(b),
        _ => a.or(b),
    }
}

/// Random expression trees over the test schema — including references to
/// a column that does not exist (`Missing`), type errors (arithmetic on
/// strings/booleans), division by zero, and sqrt of negatives, so the
/// batch error paths get exercised as much as the value paths.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![
            Just("I"),
            Just("L"),
            Just("D"),
            Just("S"),
            Just("B"),
            Just("Missing"),
        ]
        .prop_map(col),
        (-100i64..100).prop_map(lit),
        (-50.0f64..50.0).prop_map(lit),
        Just(lit(0i64)), // division-by-zero fodder
        Just(lit("u1")),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..12).prop_map(|(a, b, op)| apply_op(a, b, op)),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(Expr::sqrt),
            inner.prop_map(Expr::abs),
        ]
    })
}

fn arb_events(max_len: usize) -> impl Strategy<Value = Vec<(i64, i64, Row)>> {
    prop::collection::vec((0i64..200, 1i64..50, arb_row()), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(s, w, r)| (s, s + w, r)).collect())
}

fn stream_of(events: &[(i64, i64, Row)]) -> EventStream {
    EventStream::new(
        schema(),
        events
            .iter()
            .map(|(s, e, r)| Event::new(Lifetime::new(*s, *e), r.clone()))
            .collect(),
    )
}

fn batch_of(events: &[(i64, i64, Row)]) -> EventBatch {
    EventBatch::from_stream(&stream_of(events)).expect("generator rows fit the schema")
}

fn arb_lifetime_op() -> impl Strategy<Value = LifetimeOp> {
    prop_oneof![
        (1i64..50).prop_map(LifetimeOp::Window),
        (1i64..20, 1i64..40).prop_map(|(hop, width)| LifetimeOp::Hop { hop, width }),
        (-20i64..20).prop_map(LifetimeOp::Shift),
        (0i64..20).prop_map(LifetimeOp::ExtendBack),
        Just(LifetimeOp::ToPoint),
    ]
}

/// A menu of projection expressions mixing passthroughs, computations,
/// boolean logic, and errors (`Missing`, div-by-null-prone `L / I`).
fn proj_menu(idx: usize) -> (String, Expr) {
    let exprs: Vec<(&str, Expr)> = vec![
        ("A", col("S")),
        ("B", col("L")),
        ("C", col("L").mul(lit(3i64)).add(col("I"))),
        ("D2", col("D").mul(col("D"))),
        ("E", col("S")),
        ("F", col("B").and(col("L").gt(lit(0i64)))),
        ("G", col("Missing").add(lit(1i64))),
        ("H", col("L").div(col("I"))),
    ];
    let (name, e) = &exprs[idx % exprs.len()];
    (format!("{name}{idx}"), e.clone())
}

/// The scalar reference result for one expression over one batch: either
/// every row's value, or the first error in row order.
fn scalar_reference(
    c: &CompiledExpr,
    batch: &ColumnBatch,
) -> Result<Vec<Value>, timr_suite::temporal::TemporalError> {
    (0..batch.len()).map(|i| c.eval(&batch.row(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `CompiledExpr::eval_batch` is observably identical to row-at-a-time
    /// `eval`: the output column holds every row's scalar value bit for
    /// bit, and a failing batch reproduces the *first* scalar error — same
    /// row, same message.
    #[test]
    fn batch_eval_matches_scalar(e in arb_expr(), rows in prop::collection::vec(arb_row(), 0..40)) {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows).expect("typed rows");
        let c = CompiledExpr::compile(&e, &s);
        match (c.eval_batch(&batch), scalar_reference(&c, &batch)) {
            (Ok(Some(col)), Ok(vals)) => {
                prop_assert_eq!(col.len(), vals.len());
                for (i, v) in vals.iter().enumerate() {
                    prop_assert_eq!(&col.value(i), v, "expr {} row {}", &e, i);
                }
            }
            // No dense single-type column form (mixed runtime types): the
            // executor falls back to rows; scalar evaluation must succeed.
            (Ok(None), Ok(_)) => {}
            (Err(b), Err(r)) => prop_assert_eq!(b.to_string(), r.to_string(), "expr {}", &e),
            (b, r) => prop_assert!(false, "diverged on {}: batch {:?} vs scalar {:?}", &e, b, r),
        }
    }

    /// Predicate batches agree with row-at-a-time `eval_predicate`:
    /// identical keep-vectors (Null → false) and identical first errors.
    #[test]
    fn batch_predicate_matches_scalar(
        e in arb_expr(),
        rows in prop::collection::vec(arb_row(), 0..40),
    ) {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows).expect("typed rows");
        let c = CompiledExpr::compile(&e, &s);
        let scalar: Result<Vec<bool>, _> =
            (0..batch.len()).map(|i| c.eval_predicate(&batch.row(i))).collect();
        match (c.eval_predicate_batch(&batch), scalar) {
            (Ok(b), Ok(r)) => prop_assert_eq!(b, r, "expr {}", &e),
            (Err(b), Err(r)) => prop_assert_eq!(b.to_string(), r.to_string(), "expr {}", &e),
            (b, r) => prop_assert!(false, "diverged on {}: batch {:?} vs scalar {:?}", &e, b, r),
        }
    }

    /// `filter_batch` equals both the compiled row filter and the frozen
    /// interpreted baseline — surviving events, their order, and their
    /// lifetimes — and errors exactly when they do.
    #[test]
    fn filter_batch_matches_row_paths(events in arb_events(40), e in arb_expr()) {
        use timr_suite::temporal::operators::interpreted;
        let input = stream_of(&events);
        let baseline = interpreted::filter(&input, &e);
        let row = filter(stream_of(&events), &e);
        let col = filter_batch(batch_of(&events), &e).map(EventBatch::into_stream);
        match (baseline, row, col) {
            (Ok(b), Ok(r), Ok(c)) => {
                prop_assert_eq!(&b, &r);
                prop_assert_eq!(&b, &c);
            }
            (Err(b), Err(r), Err(c)) => {
                prop_assert_eq!(r.to_string(), c.to_string(), "interpreted: {}", b);
            }
            (b, r, c) => prop_assert!(
                false, "diverged: interp {:?} row {:?} columnar {:?}", b, r, c
            ),
        }
    }

    /// `project_batch` equals the row projection whenever it produces a
    /// batch, falls back (`Ok(None)`) only on rows the row path also
    /// handles, and reproduces the row path's exact first error.
    #[test]
    fn project_batch_matches_row_paths(
        events in arb_events(40),
        picks in prop::collection::vec(0usize..8, 1..6),
    ) {
        let exprs: Vec<(String, Expr)> =
            picks.iter().enumerate().map(|(j, &i)| proj_menu(i * 8 + j)).collect();
        let row = project(stream_of(&events), &exprs);
        let col = project_batch(&batch_of(&events), &exprs);
        match (row, col) {
            (Ok(r), Ok(Some(c))) => prop_assert_eq!(&r, &c.into_stream()),
            (Ok(_), Ok(None)) => {} // fallback: executor re-runs the row path
            (Err(r), Err(c)) => prop_assert_eq!(r.to_string(), c.to_string()),
            (r, c) => prop_assert!(false, "diverged: row {:?} columnar {:?}", r, c),
        }
    }

    /// `alter_lifetime_batch` rewrites the lifetime vectors exactly like
    /// the row operator, including Hop's event drops.
    #[test]
    fn alter_lifetime_batch_matches_row_paths(events in arb_events(40), op in arb_lifetime_op()) {
        let row = alter_lifetime(stream_of(&events), &op).unwrap();
        let col = alter_lifetime_batch(batch_of(&events), &op).unwrap();
        prop_assert_eq!(&row, &col.into_stream());
    }
}

mod plans {
    //! End-to-end: whole plans under `ExecMode::Columnar` are
    //! byte-identical to both row modes, fallbacks included.
    use super::*;
    use timr_suite::temporal::exec::{bindings, execute_single_with_mode, ExecMode};
    use timr_suite::temporal::plan::LogicalPlan;
    use timr_suite::temporal::Query;

    /// A random single-source plan mixing columnar-kernel operators
    /// (filter, project, alter-lifetime, group-apply) with row-only ones
    /// (aggregate, union of a multicast), so every run crosses the
    /// batch/row boundary at least once.
    fn build_plan(kind: usize, w: i64, thresh: i64) -> LogicalPlan {
        let q = Query::new();
        let src = q.source("in", schema());
        let out = match kind {
            0 => src
                .filter(col("L").ge(lit(thresh)))
                .group_apply(&["S"], |g| g.window(w).count("N")),
            1 => src
                .project(vec![
                    ("S".to_string(), col("S")),
                    ("V".to_string(), col("L").add(col("I"))),
                ])
                .filter(col("V").gt(lit(thresh)))
                .group_apply(&["S"], |g| g.window(w).count("N")),
            2 => {
                let m = src.filter(col("B"));
                let a = m.clone().filter(col("L").ge(lit(thresh)));
                let b = m.filter(col("L").lt(lit(thresh)));
                a.union(b).window(w).count("N")
            }
            _ => src
                .window(w)
                .group_apply(&["S"], |g| g.filter(col("I").ge(lit(0i64))).count("N")),
        };
        q.build(vec![out]).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Columnar ≡ compiled ≡ interpreted on full plans: identical
        /// event vectors (not merely the same relation) or identical
        /// error outcomes.
        #[test]
        fn columnar_plans_are_byte_identical(
            events in arb_events(60),
            kind in 0usize..4,
            w in 1i64..50,
            thresh in -100i64..100,
        ) {
            let plan = build_plan(kind, w, thresh);
            let srcs = bindings(vec![("in", stream_of(&events))]);
            let compiled = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled);
            let interpreted = execute_single_with_mode(&plan, &srcs, ExecMode::Interpreted);
            let columnar = execute_single_with_mode(&plan, &srcs, ExecMode::Columnar);
            match (compiled, interpreted, columnar) {
                (Ok(a), Ok(b), Ok(c)) => {
                    prop_assert_eq!(a.events(), b.events(), "compiled vs interpreted");
                    prop_assert_eq!(b.events(), c.events(), "interpreted vs columnar");
                }
                (Err(a), Err(_), Err(c)) => {
                    prop_assert_eq!(a.to_string(), c.to_string(), "compiled vs columnar error");
                }
                (a, b, c) => prop_assert!(
                    false, "diverged: compiled {:?} interpreted {:?} columnar {:?}", a, b, c
                ),
            }
        }
    }

    #[test]
    fn empty_stream_is_identical_in_every_mode() {
        let plan = build_plan(1, 10, 0);
        let srcs = bindings(vec![("in", stream_of(&[]))]);
        let compiled = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled).unwrap();
        let columnar = execute_single_with_mode(&plan, &srcs, ExecMode::Columnar).unwrap();
        assert_eq!(compiled.events(), columnar.events());
        assert!(columnar.is_empty());
    }
}
