//! Map-side DSMS fragments: the embedded-DSMS idea of paper §III-C applied
//! to the *map* phase.
//!
//! [`crate::compile`] and [`crate::multi`] split each stage plan with
//! [`temporal::plan::push_down`]; the exchange-free prefix of every pushed
//! input compiles into one [`DsmsMapper`] unit. The cluster invokes the
//! mapper once per input extent, *before* partitioning: rows decode into
//! events exactly like a reducer input (columnar-first with row fallback),
//! the unmodified DSMS runs the mapper plan, and the results come back
//! through the same push/pull queue in canonical sorted order — so mapper
//! output, like reducer output, is a pure byte-deterministic function of
//! its input rows, which is what lets shuffle rebuilds and task retries
//! re-run it safely.
//!
//! Mapper output is always [`EventEncoding::Interval`]-framed: stateless
//! prefixes can stretch lifetimes (windows) and partial aggregates emit
//! interval cells, so the point encoding of raw logs no longer fits.

use crate::bridge::{pull_through_queue, EventEncoding};
use crate::compile::{bind_rows, InputBinding};
use crate::error::TimrError;
use mapreduce::{Mapper, MapperContext, MrError};
use relation::{Row, Schema};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use temporal::exec::{DataBindings, ExecMode, ExecOptions};
use temporal::plan::{LogicalPlan, MapperPlan};

/// One pushed input's map-side fragment.
#[derive(Debug, Clone)]
pub(crate) struct MapperUnit {
    /// The mapper plan (source → pushed prefix [→ partial aggregation]).
    plan: LogicalPlan,
    /// How to decode the *raw* input rows (the stage input's encoding).
    binding: InputBinding,
    /// Payload schema of the mapper output (the plan root's schema).
    output_payload: Schema,
}

impl MapperUnit {
    /// Build a unit from a [`push_down`](temporal::plan::push_down) mapper
    /// plan and the raw input's binding. Under [`ExecMode::Fused`] the
    /// mapper plan is fused here, separately from the residual — the two
    /// halves are independent plans after the split.
    pub(crate) fn new(
        mp: &MapperPlan,
        binding: InputBinding,
        exec_mode: ExecMode,
    ) -> crate::error::Result<Self> {
        let plan = if exec_mode == ExecMode::Fused {
            temporal::plan::fuse_plan(&mp.plan).map_err(TimrError::Temporal)?
        } else {
            mp.plan.clone()
        };
        let output_payload = plan.schema_of(plan.roots()[0]).clone();
        Ok(MapperUnit {
            plan,
            binding,
            output_payload,
        })
    }
}

/// The map-side sibling of [`crate::compile::DsmsReducer`]: per stage
/// input, either an embedded-DSMS fragment or identity passthrough.
#[derive(Debug, Clone)]
pub(crate) struct DsmsMapper {
    /// One slot per stage input, in stage-input order; `None` passes the
    /// input through to the shuffle untouched.
    units: Vec<Option<MapperUnit>>,
    exec_mode: ExecMode,
}

impl DsmsMapper {
    pub(crate) fn new(units: Vec<Option<MapperUnit>>, exec_mode: ExecMode) -> Self {
        DsmsMapper { units, exec_mode }
    }
}

impl Mapper for DsmsMapper {
    fn output_schema(&self, input: usize, schema: &Schema) -> mapreduce::Result<Schema> {
        Ok(match self.units.get(input).and_then(Option::as_ref) {
            Some(unit) => EventEncoding::Interval.dataset_schema(&unit.output_payload),
            None => schema.clone(),
        })
    }

    fn map(&self, ctx: &MapperContext, rows: &[Row]) -> mapreduce::Result<Option<Vec<Row>>> {
        let Some(unit) = self.units.get(ctx.input).and_then(Option::as_ref) else {
            return Ok(None);
        };
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.extent,
            message: format!("mapper input {}: {e}", ctx.input),
        };
        let mut sources: DataBindings = FxHashMap::default();
        let data = bind_rows(self.exec_mode, &unit.binding, rows).map_err(to_mr)?;
        sources.insert(unit.binding.source_name.clone(), data);
        let options = ExecOptions::with_mode(self.exec_mode).on_pool(Arc::clone(&ctx.dsms_pool));
        let result = temporal::exec::execute_single_owned_data(&unit.plan, sources, &options)
            .map_err(|e| to_mr(TimrError::Temporal(e)))?;
        pull_through_queue(EventEncoding::Interval, result)
            .map(Some)
            .map_err(to_mr)
    }
}
