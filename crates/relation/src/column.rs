//! Column-major row storage: typed dense vectors plus a null bitmap.
//!
//! A [`ColumnBatch`] holds the same information as a `Vec<Row>` of one
//! schema, transposed: one [`Column`] per field, each a dense typed vector
//! (`Vec<i64>`, `Vec<f64>`, …) with an optional [`Validity`] bitmap marking
//! which slots are real values and which are `Null`. Null slots hold an
//! unobservable placeholder (zero / `false` / empty string) so kernels can
//! sweep whole vectors without branching on nullness; readers must consult
//! the validity bitmap first.
//!
//! Conversion is lossless **only for rows whose cells match the declared
//! column types** ([`ColumnType::admits`]). Row storage tolerates ill-typed
//! cells (the codec's `decode_row` never type-checks), so [`from_rows`]
//! returns an error for such rows and callers fall back to row-major
//! processing — the batch layer is a fast path, never a semantic change.
//!
//! [`from_rows`]: ColumnBatch::from_rows

use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::{ColumnType, Field, Schema};
use crate::value::Value;
use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Null bitmap: bit `i` set ⇔ slot `i` holds a real (non-null) value.
#[derive(Debug, Clone)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
}

impl Validity {
    /// Empty bitmap; grow it with [`Validity::push`].
    pub fn new() -> Validity {
        Validity {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Bitmap from per-slot null flags (`true` = null). Returns `None` when
    /// every slot is valid — the representation for fully-dense columns.
    pub fn from_null_flags(nulls: &[bool]) -> Option<Validity> {
        if !nulls.contains(&true) {
            return None;
        }
        let mut v = Validity::new();
        for &null in nulls {
            v.push(!null);
        }
        Some(v)
    }

    /// Bitmap from raw 64-bit words (bit `i` set ⇔ slot `i` valid), as
    /// stored in a binary extent. Trailing bits beyond `len` are masked off
    /// and the word vector is resized to exactly cover `len` slots, so the
    /// result is canonical. Returns `None` when every slot is valid.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Option<Validity> {
        words.resize(len.div_ceil(64), 0);
        if !len.is_multiple_of(64) {
            if let Some(w) = words.last_mut() {
                *w &= (1u64 << (len % 64)) - 1;
            }
        }
        let v = Validity { words, len };
        (0..len).any(|i| !v.is_valid(i)).then_some(v)
    }

    /// The raw bitmap words (bit `i` of word `i / 64` ⇔ slot `i` valid).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether slot `i` holds a real value.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Append a slot.
    pub fn push(&mut self, valid: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if valid {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Keep only the slots where `keep` is true (bulk word rebuild, no
    /// per-slot reallocation).
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        let kept = keep.iter().filter(|&&k| k).count();
        let mut words = vec![0u64; kept.div_ceil(64)];
        let mut j = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                if self.is_valid(i) {
                    words[j / 64] |= 1 << (j % 64);
                }
                j += 1;
            }
        }
        self.words = words;
        self.len = kept;
    }

    /// Append every slot of `other`.
    pub fn extend(&mut self, other: &Validity) {
        for i in 0..other.len() {
            self.push(other.is_valid(i));
        }
    }

    /// Gather the slots at `idx` into a fresh bitmap. Returns `None` when
    /// every gathered slot is valid — the canonical dense representation.
    pub fn gather(&self, idx: &[u32]) -> Option<Validity> {
        let mut words = vec![0u64; idx.len().div_ceil(64)];
        let mut any_null = false;
        for (j, &i) in idx.iter().enumerate() {
            if self.is_valid(i as usize) {
                words[j / 64] |= 1 << (j % 64);
            } else {
                any_null = true;
            }
        }
        any_null.then_some(Validity {
            words,
            len: idx.len(),
        })
    }

    /// Keep only the slots at `idx` (strictly increasing), in place.
    fn compact(&mut self, idx: &[u32]) {
        let mut words = vec![0u64; idx.len().div_ceil(64)];
        for (j, &i) in idx.iter().enumerate() {
            if self.is_valid(i as usize) {
                words[j / 64] |= 1 << (j % 64);
            }
        }
        self.words = words;
        self.len = idx.len();
    }
}

impl Default for Validity {
    fn default() -> Self {
        Validity::new()
    }
}

/// The typed dense storage of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 32-bit integers.
    Int(Vec<i32>),
    /// 64-bit integers.
    Long(Vec<i64>),
    /// 64-bit floats.
    Double(Vec<f64>),
    /// Interned strings (`Arc` clones are pointer bumps, as in [`Value`]).
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// Empty storage of the given type with room for `capacity` slots.
    pub fn with_capacity(ty: ColumnType, capacity: usize) -> ColumnData {
        match ty {
            ColumnType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(capacity)),
            ColumnType::Long => ColumnData::Long(Vec::with_capacity(capacity)),
            ColumnType::Double => ColumnData::Double(Vec::with_capacity(capacity)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(capacity)),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(d) => d.len(),
            ColumnData::Int(d) => d.len(),
            ColumnData::Long(d) => d.len(),
            ColumnData::Double(d) => d.len(),
            ColumnData::Str(d) => d.len(),
        }
    }

    /// True when the storage has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the placeholder value (the slot must be masked as null).
    fn push_placeholder(&mut self) {
        match self {
            ColumnData::Bool(d) => d.push(false),
            ColumnData::Int(d) => d.push(0),
            ColumnData::Long(d) => d.push(0),
            ColumnData::Double(d) => d.push(0.0),
            ColumnData::Str(d) => d.push(Arc::from("")),
        }
    }

    fn retain(&mut self, keep: &[bool]) {
        // Two-pointer in-place compaction: each survivor is moved (swapped,
        // so `Arc` strings transfer without refcount traffic) at most once.
        macro_rules! compact_vec {
            ($d:expr) => {{
                let mut w = 0;
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        if i != w {
                            $d.swap(w, i);
                        }
                        w += 1;
                    }
                }
                $d.truncate(w);
            }};
        }
        match self {
            ColumnData::Bool(d) => compact_vec!(d),
            ColumnData::Int(d) => compact_vec!(d),
            ColumnData::Long(d) => compact_vec!(d),
            ColumnData::Double(d) => compact_vec!(d),
            ColumnData::Str(d) => compact_vec!(d),
        }
    }

    /// Gather the slots at `idx` into a new storage of the same variant
    /// (indices may repeat and appear in any order).
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        macro_rules! gather_vec {
            ($d:expr, $variant:ident) => {
                ColumnData::$variant(idx.iter().map(|&i| $d[i as usize].clone()).collect())
            };
        }
        match self {
            ColumnData::Bool(d) => gather_vec!(d, Bool),
            ColumnData::Int(d) => gather_vec!(d, Int),
            ColumnData::Long(d) => gather_vec!(d, Long),
            ColumnData::Double(d) => gather_vec!(d, Double),
            ColumnData::Str(d) => gather_vec!(d, Str),
        }
    }

    /// Keep only the slots at `idx` (strictly increasing), in place: each
    /// survivor moves into position once, so only `idx.len()` slots are
    /// touched — no full-width mask scan per column. `Copy` payloads use a
    /// plain overwrite (no write-back into the vacated slot); strings swap
    /// so the tail keeps valid values for `truncate` to drop.
    fn compact(&mut self, idx: &[u32]) {
        macro_rules! compact_copy {
            ($d:expr) => {{
                for (w, &i) in idx.iter().enumerate() {
                    $d[w] = $d[i as usize];
                }
                $d.truncate(idx.len());
            }};
        }
        match self {
            ColumnData::Bool(d) => compact_copy!(d),
            ColumnData::Int(d) => compact_copy!(d),
            ColumnData::Long(d) => compact_copy!(d),
            ColumnData::Double(d) => compact_copy!(d),
            ColumnData::Str(d) => {
                for (w, &i) in idx.iter().enumerate() {
                    if w != i as usize {
                        d.swap(w, i as usize);
                    }
                }
                d.truncate(idx.len());
            }
        }
    }

    fn append(&mut self, other: ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend(b),
            (ColumnData::Long(a), ColumnData::Long(b)) => a.extend(b),
            (ColumnData::Double(a), ColumnData::Double(b)) => a.extend(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b),
            _ => {
                return Err(RelationError::SchemaMismatch(
                    "column storage variants differ".to_string(),
                ))
            }
        }
        Ok(())
    }
}

/// One column of a [`ColumnBatch`]: typed dense data plus null bitmap.
///
/// `validity == None` means every slot is valid. Null slots hold an
/// arbitrary placeholder in `data`; nothing may observe it, so the data
/// variant of an all-null column need not match the schema's declared type.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Validity>,
}

impl Column {
    /// Build from parts. The bitmap, when present, must cover every slot.
    pub fn new(data: ColumnData, validity: Option<Validity>) -> Column {
        if let Some(v) = &validity {
            assert_eq!(v.len(), data.len(), "validity bitmap length mismatch");
        }
        Column { data, validity }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap (`None` ⇔ all slots valid).
    pub fn validity(&self) -> Option<&Validity> {
        self.validity.as_ref()
    }

    /// Whether slot `i` holds a real value.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.is_valid(i))
    }

    /// Materialize slot `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(d) => Value::Bool(d[i]),
            ColumnData::Int(d) => Value::Int(d[i]),
            ColumnData::Long(d) => Value::Long(d[i]),
            ColumnData::Double(d) => Value::Double(d[i]),
            ColumnData::Str(d) => Value::Str(Arc::clone(&d[i])),
        }
    }

    /// Hash slot `i` exactly as `Value::hash` would hash [`Self::value`]:
    /// the variant rank byte, then the payload (`f64` by bit pattern,
    /// strings as `str`). Keys hashed off columns must agree bit-for-bit
    /// with keys hashed off rows ([`crate::hash::key_hash`]); the agreement
    /// is property-tested in this module and in the temporal crate.
    pub fn hash_cell<H: Hasher>(&self, i: usize, state: &mut H) {
        if !self.is_valid(i) {
            0u8.hash(state); // Value::Null: rank only, no payload
            return;
        }
        match &self.data {
            ColumnData::Bool(d) => {
                1u8.hash(state);
                d[i].hash(state);
            }
            ColumnData::Int(d) => {
                2u8.hash(state);
                d[i].hash(state);
            }
            ColumnData::Long(d) => {
                3u8.hash(state);
                d[i].hash(state);
            }
            ColumnData::Double(d) => {
                4u8.hash(state);
                d[i].to_bits().hash(state);
            }
            ColumnData::Str(d) => {
                5u8.hash(state);
                d[i].hash(state);
            }
        }
    }

    /// Keep only the slots where `keep` is true.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len(), "retain mask length mismatch");
        self.data.retain(keep);
        if let Some(v) = &mut self.validity {
            v.retain(keep);
        }
    }

    /// Gather the slots at `idx` into a new column (indices may repeat and
    /// appear in any order; out-of-range indices panic).
    pub fn gather(&self, idx: &[u32]) -> Column {
        Column {
            data: self.data.gather(idx),
            validity: self.validity.as_ref().and_then(|v| v.gather(idx)),
        }
    }

    /// Keep only the slots at `idx` (strictly increasing), in place.
    pub fn compact(&mut self, idx: &[u32]) {
        self.data.compact(idx);
        if let Some(v) = &mut self.validity {
            v.compact(idx);
        }
    }

    /// Decompose into storage and bitmap (copy-free handover to consumers
    /// that want to own the dense vectors, e.g. the bridge decode path).
    pub fn into_parts(self) -> (ColumnData, Option<Validity>) {
        (self.data, self.validity)
    }

    /// Append every slot of `other`; errors when the storage variants
    /// differ (columns decoded from canonical extents always agree).
    pub fn append(&mut self, other: Column) -> Result<()> {
        let self_len = self.len();
        self.data.append(other.data)?;
        self.validity = match (self.validity.take(), other.validity) {
            (None, None) => None,
            (a, b) => {
                let mut v = Validity::new();
                for i in 0..self_len {
                    v.push(a.as_ref().is_none_or(|x| x.is_valid(i)));
                }
                match b {
                    Some(b) => v.extend(&b),
                    None => {
                        for _ in self_len..self.data.len() {
                            v.push(true);
                        }
                    }
                }
                Some(v)
            }
        };
        Ok(())
    }
}

/// Incremental [`Column`] builder used by [`ColumnBatch::from_rows`].
pub struct ColumnBuilder {
    name: String,
    ty: ColumnType,
    data: ColumnData,
    nulls: Vec<bool>,
    any_null: bool,
}

impl ColumnBuilder {
    /// Builder for one schema field with room for `capacity` slots.
    pub fn new(field: &Field, capacity: usize) -> ColumnBuilder {
        ColumnBuilder {
            name: field.name.clone(),
            ty: field.ty,
            data: ColumnData::with_capacity(field.ty, capacity),
            nulls: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    /// Append a cell; errors when the value does not inhabit the declared
    /// column type (the caller falls back to row storage).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (&mut self.data, v) {
            (data, Value::Null) => {
                data.push_placeholder();
                self.nulls.push(true);
                self.any_null = true;
                return Ok(());
            }
            (ColumnData::Bool(d), Value::Bool(b)) => d.push(*b),
            (ColumnData::Int(d), Value::Int(x)) => d.push(*x),
            (ColumnData::Long(d), Value::Long(x)) => d.push(*x),
            (ColumnData::Double(d), Value::Double(x)) => d.push(*x),
            (ColumnData::Str(d), Value::Str(s)) => d.push(Arc::clone(s)),
            _ => {
                return Err(RelationError::TypeMismatch {
                    column: self.name.clone(),
                    expected: self.ty.to_string(),
                    actual: v.type_name().to_string(),
                })
            }
        }
        self.nulls.push(false);
        Ok(())
    }

    /// Finish into a [`Column`].
    pub fn finish(self) -> Column {
        let validity = if self.any_null {
            Validity::from_null_flags(&self.nulls)
        } else {
            None
        };
        Column::new(self.data, validity)
    }
}

/// A fixed-length batch of rows stored column-major.
///
/// The row count is carried explicitly so zero-column schemas still know
/// their length.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnBatch {
    /// Assemble from parts; every column must have exactly `rows` slots.
    pub fn new(schema: Schema, columns: Vec<Column>, rows: usize) -> ColumnBatch {
        assert_eq!(columns.len(), schema.len(), "column count mismatch");
        for c in &columns {
            assert_eq!(c.len(), rows, "column length mismatch");
        }
        ColumnBatch {
            schema,
            columns,
            rows,
        }
    }

    /// Transpose rows into columns. Errors on any arity mismatch or cell
    /// that does not inhabit its declared type; see the module docs for why
    /// that is a fallback signal, not a failure.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> Result<ColumnBatch> {
        Self::from_value_rows(schema.clone(), rows.len(), rows.iter().map(Row::values))
    }

    /// [`Self::from_rows`] over borrowed value slices (lets callers strip
    /// leading framing cells without materializing intermediate rows).
    pub fn from_value_rows<'a, I>(schema: Schema, capacity: usize, rows: I) -> Result<ColumnBatch>
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f, capacity))
            .collect();
        let mut count = 0;
        for row in rows {
            if row.len() != schema.len() {
                return Err(RelationError::ArityMismatch {
                    expected: schema.len(),
                    actual: row.len(),
                });
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v)?;
            }
            count += 1;
        }
        Ok(ColumnBatch {
            schema,
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            rows: count,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Gather row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Gather row `i` into a caller-owned scratch row, reusing its value
    /// vector's allocation (the no-alloc twin of [`Self::row`]).
    pub fn row_into(&self, i: usize, row: &mut Row) {
        let values = row.values_mut();
        values.clear();
        values.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Transpose back into rows (lossless).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Keep only the rows where `keep` is true. The survivor index vector
    /// is computed once and every column compacts by it, instead of each
    /// column re-scanning the full mask.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.rows, "retain mask length mismatch");
        self.compact(&compact_indices(keep));
    }

    /// Gather the rows at `idx` into a new batch (indices may repeat and
    /// appear in any order).
    pub fn gather(&self, idx: &[u32]) -> ColumnBatch {
        ColumnBatch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            rows: idx.len(),
        }
    }

    /// Keep only the rows at `idx` (strictly increasing), in place.
    pub fn compact(&mut self, idx: &[u32]) {
        for c in &mut self.columns {
            c.compact(idx);
        }
        self.rows = idx.len();
    }

    /// Decompose into schema, columns, and row count (copy-free handover).
    pub fn into_parts(self) -> (Schema, Vec<Column>, usize) {
        (self.schema, self.columns, self.rows)
    }

    /// Append every row of `other`; the schemas must be identical.
    pub fn append(&mut self, other: ColumnBatch) -> Result<()> {
        if self.schema != other.schema {
            return Err(RelationError::SchemaMismatch(format!(
                "cannot append {} onto {}",
                other.schema, self.schema
            )));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns) {
            a.append(b)?;
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Encode into the framed binary extent form (see [`crate::extent`]).
    pub fn to_extent_bytes(&self) -> Result<Vec<u8>> {
        crate::extent::encode_extent(self)
    }

    /// Decode a framed binary extent produced by [`Self::to_extent_bytes`].
    /// Every integrity frame is verified first; damaged bytes error out.
    pub fn from_extent_bytes(bytes: &[u8]) -> Result<ColumnBatch> {
        crate::extent::decode_extent(bytes)
    }

    /// Per-row key hash over the cells at `indices` — bit-identical to
    /// [`crate::hash::key_hash`] on the gathered row.
    pub fn key_hashes(&self, indices: &[usize]) -> Vec<u64> {
        (0..self.rows)
            .map(|i| {
                let mut h = FxHasher::default();
                for &c in indices {
                    self.columns[c].hash_cell(i, &mut h);
                }
                h.finish()
            })
            .collect()
    }
}

/// Survivor indices of a boolean keep-mask — the index-vector currency
/// shared by [`ColumnBatch::compact`] and the `gather` primitives.
pub fn compact_indices(keep: &[bool]) -> Vec<u32> {
    let mut idx = Vec::with_capacity(keep.len());
    for (i, &k) in keep.iter().enumerate() {
        if k {
            idx.push(i as u32);
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_hash;
    use crate::row;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("B", ColumnType::Bool),
            Field::new("I", ColumnType::Int),
            Field::new("L", ColumnType::Long),
            Field::new("D", ColumnType::Double),
            Field::new("S", ColumnType::Str),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            row![true, 1i32, 2i64, 0.5f64, "a"],
            Row::new(vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]),
            row![false, -7i32, i64::MAX, f64::NAN, ""],
        ]
    }

    #[test]
    fn round_trip_is_lossless() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_rows(), rows());
    }

    #[test]
    fn empty_batch_round_trips() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &[]).unwrap();
        assert!(batch.is_empty());
        assert!(batch.to_rows().is_empty());
    }

    #[test]
    fn ill_typed_cells_are_rejected() {
        let s = Schema::new(vec![Field::new("L", ColumnType::Long)]);
        assert!(ColumnBatch::from_rows(&s, &[row!["oops"]]).is_err());
        assert!(ColumnBatch::from_rows(&s, &[row![1i64, 2i64]]).is_err());
    }

    #[test]
    fn retain_compacts_rows_and_validity() {
        let s = schema();
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        batch.retain(&[true, false, true]);
        assert_eq!(batch.len(), 2);
        let want = vec![rows()[0].clone(), rows()[2].clone()];
        assert_eq!(batch.to_rows(), want);
    }

    #[test]
    fn hash_cell_matches_value_hash() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let indices: Vec<usize> = (0..s.len()).collect();
        let hashes = batch.key_hashes(&indices);
        for (i, r) in rows().iter().enumerate() {
            assert_eq!(hashes[i], key_hash(r, &indices), "row {i}");
        }
    }

    #[test]
    fn gather_matches_row_materialization() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let idx = [2u32, 0, 2, 1];
        let gathered = batch.gather(&idx);
        assert_eq!(gathered.len(), 4);
        let all = rows();
        let want: Vec<Row> = idx.iter().map(|&i| all[i as usize].clone()).collect();
        assert_eq!(gathered.to_rows(), want);
        // Empty gather keeps the schema with zero rows.
        assert!(batch.gather(&[]).is_empty());
    }

    #[test]
    fn compact_agrees_with_retain() {
        let s = schema();
        let keep = [true, false, true];
        let mut by_retain = ColumnBatch::from_rows(&s, &rows()).unwrap();
        by_retain.retain(&keep);
        let mut by_compact = ColumnBatch::from_rows(&s, &rows()).unwrap();
        by_compact.compact(&compact_indices(&keep));
        assert_eq!(by_retain.to_rows(), by_compact.to_rows());
        assert_eq!(compact_indices(&keep), vec![0, 2]);
    }

    #[test]
    fn row_into_reuses_scratch() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let mut scratch = Row::default();
        for (i, want) in rows().iter().enumerate() {
            batch.row_into(i, &mut scratch);
            assert_eq!(&scratch, want, "row {i}");
        }
    }

    #[test]
    fn validity_gather_is_canonical() {
        let nulls = [true, false, false, true];
        let v = Validity::from_null_flags(&nulls).unwrap();
        // Selecting only valid slots canonicalizes to None.
        assert!(v.gather(&[1, 2]).is_none());
        let g = v.gather(&[3, 1, 0]).unwrap();
        assert!(!g.is_valid(0));
        assert!(g.is_valid(1));
        assert!(!g.is_valid(2));
    }

    #[test]
    fn validity_bitmap_crosses_word_boundaries() {
        let nulls: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let v = Validity::from_null_flags(&nulls).unwrap();
        assert_eq!(v.len(), 200);
        for (i, &null) in nulls.iter().enumerate() {
            assert_eq!(v.is_valid(i), !null, "slot {i}");
        }
    }
}
