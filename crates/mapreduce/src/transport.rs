//! Framed, integrity-checked byte transport between the cluster and its
//! worker processes.
//!
//! Every message crossing a backend boundary is one [`Frame`]: a kind
//! byte, a little-endian length prefix, the payload, and a trailing
//! FxHash checksum over the payload (the workspace-wide stable hash —
//! the same function the shuffle's extent frames use). The checksum is
//! what turns socket-level corruption into a *typed, retryable* event
//! instead of silently wrong bytes: a receiver that reads a frame whose
//! hash does not match reports [`Received::Corrupt`] and stays in sync
//! (the length prefix still bounded the read), so the scheduler can
//! charge the failure to the in-flight task and re-execute it.
//!
//! Two implementations of [`Transport`]:
//! - [`UdsTransport`] — a Unix-domain socket pair, the real inter-process
//!   path used by the multi-process backend (payloads are PR 6 binary
//!   extent images, so the wire reuses `relation::extent` end to end);
//! - [`MemTransport`] — an in-memory queue pair that routes bytes through
//!   the *same* encode/decode, used to test the protocol without forking.

use relation::hash::stable_hash;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Frame header: kind byte + u64 payload length. Payload follows, then a
/// u64 FxHash of the payload.
const HEADER_LEN: usize = 1 + 8;

/// Refuse frames claiming more than this many payload bytes — a corrupted
/// length prefix must not turn into an unbounded allocation.
const MAX_FRAME_BYTES: u64 = 1 << 34;

/// What a message is, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → cluster: "I am alive and ready" (sent once at startup).
    Hello,
    /// Worker → cluster: periodic liveness beacon.
    Heartbeat,
    /// Cluster → worker: a task descriptor (+ payload for reduce tasks).
    Task,
    /// Worker → cluster: mid-task progress marker (e.g. "shuffle phase
    /// verified") so retry accounting can charge failures to the right
    /// phase even when the worker dies before finishing.
    Progress,
    /// Worker → cluster: a task result (extent images or a typed error).
    TaskResult,
    /// Cluster → worker: exit cleanly.
    Shutdown,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Heartbeat => 1,
            FrameKind::Task => 2,
            FrameKind::Progress => 3,
            FrameKind::TaskResult => 4,
            FrameKind::Shutdown => 5,
        }
    }

    fn from_byte(b: u8) -> io::Result<FrameKind> {
        Ok(match b {
            0 => FrameKind::Hello,
            1 => FrameKind::Heartbeat,
            2 => FrameKind::Task,
            3 => FrameKind::Progress,
            4 => FrameKind::TaskResult,
            5 => FrameKind::Shutdown,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame kind {other}"),
                ))
            }
        })
    }
}

/// One message: a kind and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What this message is.
    pub kind: FrameKind,
    /// Message body (task descriptors, extent images, error reports).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less frame (heartbeats, shutdown).
    pub fn control(kind: FrameKind) -> Frame {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }
}

/// Outcome of receiving one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Received {
    /// A verified frame.
    Frame(Frame),
    /// The frame's payload hash did not match: the bytes are damaged but
    /// the stream is still in sync (the length prefix bounded the read),
    /// so the connection stays usable. The receiver charges the damage to
    /// whatever the peer was sending and moves on.
    Corrupt,
}

/// A bidirectional, framed, integrity-checked message channel.
///
/// `send` takes `&self` so a worker's heartbeat thread and task loop can
/// share one transport; implementations serialize concurrent sends so
/// frames never interleave.
pub trait Transport: Send + Sync {
    /// Send one frame.
    fn send(&self, frame: &Frame) -> io::Result<()>;

    /// Send pre-encoded frame bytes verbatim. This is the chaos hook: the
    /// sender can flip a byte *after* [`encode_frame`] computed the
    /// checksum, producing exactly the wire corruption the receiver's
    /// verification must catch.
    fn send_raw(&self, bytes: &[u8]) -> io::Result<()>;

    /// Receive the next frame, blocking. `Ok(Received::Corrupt)` is a
    /// verification failure with the stream still in sync; `Err` is a
    /// dead or violated connection (EOF, I/O error, bad frame kind).
    fn recv(&self) -> io::Result<Received>;
}

/// Encode one frame to its wire bytes: `[kind u8][len u64][payload][hash u64]`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len() + 8);
    out.push(frame.kind.to_byte());
    out.extend_from_slice(&(frame.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    out.extend_from_slice(&stable_hash(&frame.payload).to_le_bytes());
    out
}

/// The byte offset of the payload inside an encoded frame — where the
/// chaos byte-flip lands so it damages data, not the header.
pub fn payload_offset() -> usize {
    HEADER_LEN
}

/// Decode one frame from a reader (blocking until a full frame arrives).
fn read_frame(reader: &mut impl Read) -> io::Result<Received> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    let kind = FrameKind::from_byte(header[0])?;
    let len = u64::from_le_bytes(header[1..9].try_into().expect("8 header bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} payload bytes"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let mut hash = [0u8; 8];
    reader.read_exact(&mut hash)?;
    if u64::from_le_bytes(hash) != stable_hash(&payload) {
        return Ok(Received::Corrupt);
    }
    Ok(Received::Frame(Frame { kind, payload }))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Transport`] over one end of a Unix-domain socket pair.
#[cfg(unix)]
#[derive(Debug)]
pub struct UdsTransport {
    reader: Mutex<UnixStream>,
    writer: Mutex<UnixStream>,
}

#[cfg(unix)]
impl UdsTransport {
    /// Wrap one end of a socket pair.
    pub fn new(stream: UnixStream) -> io::Result<UdsTransport> {
        let writer = stream.try_clone()?;
        Ok(UdsTransport {
            reader: Mutex::new(stream),
            writer: Mutex::new(writer),
        })
    }
}

#[cfg(unix)]
impl Transport for UdsTransport {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        self.send_raw(&encode_frame(frame))
    }

    fn send_raw(&self, bytes: &[u8]) -> io::Result<()> {
        let mut writer = lock(&self.writer);
        writer.write_all(bytes)?;
        writer.flush()
    }

    fn recv(&self) -> io::Result<Received> {
        let mut reader = lock(&self.reader);
        read_frame(&mut *reader)
    }
}

/// One direction of a [`MemTransport`]: a queue of encoded frames.
#[derive(Debug, Default)]
struct MemQueue {
    frames: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
}

impl MemQueue {
    fn push(&self, bytes: Vec<u8>) {
        lock(&self.frames).push_back(bytes);
        self.ready.notify_one();
    }

    fn pop(&self) -> Vec<u8> {
        let mut frames = lock(&self.frames);
        loop {
            if let Some(bytes) = frames.pop_front() {
                return bytes;
            }
            frames = self
                .ready
                .wait(frames)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// In-memory [`Transport`] pair for protocol tests: frames go through the
/// same encode/decode (and the same corruption detection) as the socket
/// path, without a process boundary.
#[derive(Debug)]
pub struct MemTransport {
    tx: Arc<MemQueue>,
    rx: Arc<MemQueue>,
}

impl MemTransport {
    /// A connected pair: what one end sends, the other receives.
    pub fn pair() -> (MemTransport, MemTransport) {
        let a = Arc::new(MemQueue::default());
        let b = Arc::new(MemQueue::default());
        (
            MemTransport {
                tx: Arc::clone(&a),
                rx: Arc::clone(&b),
            },
            MemTransport { tx: b, rx: a },
        )
    }
}

impl Transport for MemTransport {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        self.send_raw(&encode_frame(frame))
    }

    fn send_raw(&self, bytes: &[u8]) -> io::Result<()> {
        self.tx.push(bytes.to_vec());
        Ok(())
    }

    fn recv(&self) -> io::Result<Received> {
        let bytes = self.rx.pop();
        read_frame(&mut &bytes[..])
    }
}

/// Little-endian payload builder for task descriptors and results.
#[derive(Debug, Default)]
pub(crate) struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a received payload; every read is bounds-checked so a
/// malformed payload surfaces as an error, never a panic.
#[derive(Debug)]
pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "payload truncated: wanted {n} byte(s) at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ),
            )),
        }
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    pub fn str(&mut self) -> io::Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf-8: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, payload: &[u8]) -> Frame {
        Frame {
            kind,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn frames_round_trip_through_both_transports() {
        let cases = [
            frame(FrameKind::Hello, b""),
            frame(FrameKind::Task, b"descriptor"),
            frame(FrameKind::TaskResult, &vec![7u8; 4096]),
            Frame::control(FrameKind::Shutdown),
        ];
        let (a, b) = MemTransport::pair();
        for f in &cases {
            a.send(f).unwrap();
            assert_eq!(b.recv().unwrap(), Received::Frame(f.clone()));
        }
        #[cfg(unix)]
        {
            let (x, y) = UnixStream::pair().unwrap();
            let (x, y) = (UdsTransport::new(x).unwrap(), UdsTransport::new(y).unwrap());
            for f in &cases {
                x.send(f).unwrap();
                assert_eq!(y.recv().unwrap(), Received::Frame(f.clone()));
                y.send(f).unwrap();
                assert_eq!(x.recv().unwrap(), Received::Frame(f.clone()));
            }
        }
    }

    #[test]
    fn corrupted_payload_is_detected_and_stream_stays_in_sync() {
        let (a, b) = MemTransport::pair();
        let f = frame(FrameKind::TaskResult, b"precious result bytes");
        let mut encoded = encode_frame(&f);
        let mid = payload_offset() + f.payload.len() / 2;
        encoded[mid] ^= 0xFF;
        a.send_raw(&encoded).unwrap();
        a.send(&f).unwrap();
        assert_eq!(b.recv().unwrap(), Received::Corrupt);
        // The next frame decodes cleanly: corruption did not desync.
        assert_eq!(b.recv().unwrap(), Received::Frame(f));
    }

    #[cfg(unix)]
    #[test]
    fn closed_socket_surfaces_as_error_not_corruption() {
        let (x, y) = UnixStream::pair().unwrap();
        let x = UdsTransport::new(x).unwrap();
        drop(y);
        assert!(x.recv().is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let f = frame(FrameKind::Task, b"x");
        let mut encoded = encode_frame(&f);
        encoded[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        let (a, b) = MemTransport::pair();
        a.send_raw(&encoded).unwrap();
        assert!(b.recv().is_err());
    }

    #[test]
    fn payload_reader_round_trips_and_bounds_checks() {
        let mut w = PayloadWriter::new();
        w.u8(3).u64(99).str("stage/a").bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 99);
        assert_eq!(r.str().unwrap(), "stage/a");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.u8().is_err(), "reads past the end must error");
    }
}
