//! Error types for the map-reduce runtime.
//!
//! Two layers: [`MrError`] is the job-level error surfaced to callers of
//! `Cluster::run_stage`/`run_job`, while [`TaskError`] is the *per-attempt*
//! error inside one task's retry loop. A retryable [`TaskError`] (panic,
//! transient fault, detected corruption) triggers re-execution under the
//! configured `RetryPolicy`; only when attempts are exhausted does it
//! escalate to [`MrError::TaskExhausted`], naming the stage, phase,
//! partition, and attempt count so failures are as deterministic and
//! reportable as successes.

use relation::RelationError;
use std::fmt;

/// Which phase of stage execution a task error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskPhase {
    /// Scanning an input extent and assigning rows to partitions.
    Map,
    /// Fetching/verifying a reduce partition's shuffled inputs.
    Shuffle,
    /// Running the reducer over a partition.
    Reduce,
}

impl fmt::Display for TaskPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TaskPhase::Map => "map",
            TaskPhase::Shuffle => "shuffle",
            TaskPhase::Reduce => "reduce",
        })
    }
}

/// One task attempt's failure. Everything except [`TaskError::Fatal`] is
/// retryable: the attempt is re-run (after backoff) up to
/// `RetryPolicy::max_attempts`.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// The task panicked; contained via `catch_unwind`, payload preserved.
    Panicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// A transient fault (injected kill, simulated I/O hiccup).
    Transient {
        /// Fault description.
        message: String,
    },
    /// An integrity frame did not match the data it covers.
    Corrupt {
        /// What failed verification and how.
        what: String,
    },
    /// The attempt exceeded `RetryPolicy::attempt_timeout`. Retryable:
    /// the re-execution gets a fresh deadline (and, on the multi-process
    /// backend, a fresh worker).
    TimedOut {
        /// How long the attempt ran before the deadline fired.
        elapsed: std::time::Duration,
    },
    /// A deterministic error that retrying cannot fix (bad stage config,
    /// reducer logic error); propagated immediately without retry.
    Fatal(Box<MrError>),
}

impl TaskError {
    /// Whether another attempt could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, TaskError::Fatal(_))
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panicked { payload } => write!(f, "task panicked: {payload}"),
            TaskError::Transient { message } => write!(f, "transient fault: {message}"),
            TaskError::Corrupt { what } => write!(f, "corruption detected: {what}"),
            TaskError::TimedOut { elapsed } => {
                write!(f, "attempt timed out after {elapsed:?}")
            }
            TaskError::Fatal(e) => write!(f, "fatal: {e}"),
        }
    }
}

impl From<MrError> for TaskError {
    /// Job-level errors reaching a task body are deterministic — retrying
    /// would fail identically — so they map to [`TaskError::Fatal`].
    fn from(e: MrError) -> Self {
        TaskError::Fatal(Box::new(e))
    }
}

/// Errors raised by the map-reduce runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum MrError {
    /// A named dataset was not found in the DFS.
    NoSuchDataset(String),
    /// A dataset with this name already exists.
    DatasetExists(String),
    /// A stage was misconfigured (bad partitioner columns, arity…).
    BadStage(String),
    /// A reducer failed.
    Reducer {
        /// Stage name.
        stage: String,
        /// Partition index.
        partition: usize,
        /// Failure description.
        message: String,
    },
    /// An operating-system I/O operation failed.
    Io {
        /// What was being done (e.g. "write extent").
        what: String,
        /// The path involved.
        path: String,
        /// The OS error.
        message: String,
    },
    /// Stored data failed integrity verification (length/checksum frame).
    Corrupt {
        /// What failed verification and how.
        what: String,
    },
    /// The execution backend itself failed (worker process could not be
    /// spawned, the worker set died beyond the respawn budget, a protocol
    /// violation on the wire) — as opposed to a task failing *on* a
    /// healthy backend.
    Backend {
        /// What went wrong.
        message: String,
    },
    /// A task kept failing retryably until `RetryPolicy::max_attempts`.
    TaskExhausted {
        /// Stage name.
        stage: String,
        /// Phase the task was in when it last failed.
        phase: TaskPhase,
        /// Task index within the phase (extent index for map, partition
        /// index for shuffle/reduce).
        partition: usize,
        /// Number of attempts made.
        attempts: usize,
        /// The final attempt's error.
        last: Box<TaskError>,
    },
    /// Propagated relational-layer error.
    Relation(RelationError),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::NoSuchDataset(n) => write!(f, "no such dataset `{n}`"),
            MrError::DatasetExists(n) => write!(f, "dataset `{n}` already exists"),
            MrError::BadStage(m) => write!(f, "bad stage: {m}"),
            MrError::Reducer {
                stage,
                partition,
                message,
            } => write!(
                f,
                "reducer failed in `{stage}` partition {partition}: {message}"
            ),
            MrError::Io {
                what,
                path,
                message,
            } => write!(f, "io error ({what}) at `{path}`: {message}"),
            MrError::Corrupt { what } => write!(f, "corruption detected: {what}"),
            MrError::Backend { message } => write!(f, "backend failure: {message}"),
            MrError::TaskExhausted {
                stage,
                phase,
                partition,
                attempts,
                last,
            } => write!(
                f,
                "task exhausted retries in `{stage}` {phase} partition {partition} \
                 after {attempts} attempt(s): {last}"
            ),
            MrError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for MrError {
    fn from(e: RelationError) -> Self {
        MrError::Relation(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MrError>;
