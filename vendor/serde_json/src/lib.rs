//! Vendored minimal `serde_json` stand-in: renders and parses the
//! vendored `serde::Value` tree as JSON text.

pub use serde::{Error, Value};
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to indented JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that parses back
                // to the same f64, and always keeps a `.0` or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let text = std::str::from_utf8(self.bytes).map_err(|_| Error("invalid utf-8".into()))?;
        let mut chars = text[self.pos..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000C}'),
                    Some((j, 'u')) => {
                        let start = self.pos + j + 1;
                        let hex = text
                            .get(start..start + 4)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error(format!("bad codepoint {code}")))?,
                        );
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => {
                        return Err(Error(format!("bad escape {other:?}")));
                    }
                },
                c => out.push(c),
            }
        }
        Err(Error("unterminated string".into()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-17", "0.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":[["k",0.1]]}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        let v = Value::Float(0.1 + 0.2);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert!(out.contains('\n'));
        assert_eq!(parse(&out).unwrap(), v);
    }
}
