//! Property tests for the temporal algebra: the engine's results must
//! match brute-force oracles and be independent of physical event order —
//! the foundation of every repeatability claim in the paper (§III-C.1).

use proptest::prelude::*;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Schema};
use timr_suite::temporal::exec::{bindings, execute_single};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::{Event, EventStream, Lifetime, Query};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("K", ColumnType::Str),
        Field::new("V", ColumnType::Long),
    ])
}

prop_compose! {
    fn arb_points(max_len: usize)(
        items in prop::collection::vec((0i64..500, 0u8..4, 0i64..50), 1..max_len)
    ) -> Vec<(i64, String, i64)> {
        items.into_iter().map(|(t, k, v)| (t, format!("k{k}"), v)).collect()
    }
}

fn stream_of(points: &[(i64, String, i64)]) -> EventStream {
    EventStream::new(
        payload(),
        points
            .iter()
            .map(|(t, k, v)| Event::point(*t, row![k.as_str(), *v]))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical order never changes the denoted relation, for a plan
    /// composed of every core operator kind.
    #[test]
    fn order_insensitivity(points in arb_points(60), seed in 0u64..1000) {
        let q = Query::new();
        let input = q.source("in", payload());
        let filtered = input.clone().filter(col("V").ge(lit(5i64)));
        let counted = filtered.group_apply(&["K"], |g| g.window(20).count("N"));
        let out = input.temporal_join(counted, &[("K", "K")], None);
        let plan = q.build(vec![out]).unwrap();

        let a = execute_single(&plan, &bindings(vec![("in", stream_of(&points))])).unwrap();

        // Deterministic pseudo-shuffle of the input order.
        let mut shuffled = points.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        let b = execute_single(&plan, &bindings(vec![("in", stream_of(&shuffled))])).unwrap();
        prop_assert!(a.same_relation(&b));
    }

    /// Windowed count agrees with a brute-force oracle at every instant.
    #[test]
    fn windowed_count_oracle(points in arb_points(40), w in 1i64..60) {
        let q = Query::new();
        let out = q.source("in", payload()).window(w).count("N");
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("in", stream_of(&points))]))
            .unwrap()
            .normalize();

        // Oracle: for each instant t in a probe range, the count of events
        // with timestamp in (t - w, t].
        let max_t = points.iter().map(|p| p.0).max().unwrap_or(0) + w + 2;
        for t in 0..max_t {
            let expected = points.iter().filter(|p| p.0 <= t && p.0 > t - w).count() as i64;
            let got = result
                .events()
                .iter()
                .find(|e| e.lifetime.contains(t))
                .map(|e| e.payload.get(0).as_long().unwrap())
                .unwrap_or(0);
            prop_assert_eq!(
                got, expected,
                "count mismatch at t={} (w={})", t, w
            );
        }
    }

    /// TemporalJoin agrees with a nested-loop reference.
    #[test]
    fn temporal_join_oracle(
        left in arb_points(25),
        right_raw in prop::collection::vec((0i64..100, 1i64..40, 0u8..4, 0i64..50), 1..25)
    ) {
        let right: Vec<Event> = right_raw
            .iter()
            .map(|(s, d, k, v)| Event::interval(*s, s + d, row![format!("k{k}"), *v]))
            .collect();
        let right_stream = EventStream::new(payload(), right.clone());

        let q = Query::new();
        let l = q.source("l", payload());
        let r = q.source("r", payload());
        let out = l.temporal_join(r, &[("K", "K")], None);
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(
            &plan,
            &bindings(vec![("l", stream_of(&left)), ("r", right_stream)]),
        )
        .unwrap()
        .normalize();

        // Reference: all key-equal, lifetime-intersecting pairs.
        let mut expected = EventStream::empty(payload().join(&payload()));
        for (t, k, v) in &left {
            let lt = Lifetime::point(*t);
            for re in &right {
                if re.payload.get(0).as_str() == Some(k.as_str()) {
                    if let Some(meet) = lt.intersect(&re.lifetime) {
                        let mut vals = vec![
                            timr_suite::relation::Value::str(k),
                            timr_suite::relation::Value::Long(*v),
                        ];
                        vals.extend(re.payload.values().iter().cloned());
                        expected.push(Event::new(meet, timr_suite::relation::Row::new(vals)));
                    }
                }
            }
        }
        prop_assert!(result.same_relation(&expected));
    }

    /// AntiSemiJoin partitions the left stream: every left point is either
    /// in the output or covered by a matching right interval, never both.
    #[test]
    fn anti_semi_join_partitions(
        left in arb_points(30),
        right_raw in prop::collection::vec((0i64..100, 1i64..50, 0u8..4), 0..15)
    ) {
        let right: Vec<Event> = right_raw
            .iter()
            .map(|(s, d, k)| Event::interval(*s, s + d, row![format!("k{k}"), 0i64]))
            .collect();
        let right_stream = EventStream::new(payload(), right.clone());

        let q = Query::new();
        let l = q.source("l", payload());
        let r = q.source("r", payload());
        let out = l.anti_semi_join(r, &[("K", "K")]);
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(
            &plan,
            &bindings(vec![("l", stream_of(&left)), ("r", right_stream)]),
        )
        .unwrap();

        for (t, k, v) in &left {
            let covered = right.iter().any(|re| {
                re.payload.get(0).as_str() == Some(k.as_str()) && re.lifetime.contains(*t)
            });
            let in_output = result.events().iter().any(|e| {
                e.start() == *t
                    && e.payload.get(0).as_str() == Some(k.as_str())
                    && e.payload.get(1).as_long() == Some(*v)
            });
            prop_assert_eq!(in_output, !covered, "point at t={} k={}", t, k);
        }
    }

    /// Normalization is idempotent and preserves the relation.
    #[test]
    fn normalize_idempotent(points in arb_points(50)) {
        let s = stream_of(&points);
        let n1 = s.normalize();
        let n2 = n1.normalize();
        prop_assert_eq!(n1.events(), n2.events());
        prop_assert!(s.same_relation(&n1));
    }
}
