//! Fig 20: dimensionality reduction — keywords retained per ad class as
//! the z threshold grows, with F-Ex's flat ~2000-category line for
//! comparison.
//!
//! The paper's shape: merely requiring support (z = 0) already removes
//! almost everything; each confidence step removes roughly another
//! factor; F-Ex is constant regardless of data.

use super::Ctx;
use crate::table::Table;
use bt::eval::{retained_dimensions, Scheme};
use rustc_hash::FxHashSet;

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    // Total distinct keywords seen in profiles (the "before" bar).
    let total_keywords: usize = {
        let mut kws: FxHashSet<&str> = FxHashSet::default();
        for e in ctx.examples() {
            kws.extend(e.features.keys().map(String::as_str));
        }
        kws.len()
    };

    let scores = ctx.scores().to_vec();
    let ads: Vec<String> = {
        let mut ads: Vec<String> = scores.iter().map(|s| s.ad.clone()).collect();
        ads.sort();
        ads.dedup();
        ads
    };
    let thresholds = [0.0, 1.28, 1.96, 2.56, 3.3];

    let mut table = Table::new(&[
        "Ad class", "z>0", "z>1.28", "z>1.96", "z>2.56", "z>3.3", "F-Ex",
    ]);
    for ad in &ads {
        let mut cells = vec![ad.clone()];
        for t in thresholds {
            cells.push(retained_dimensions(ad, &Scheme::KeZ { threshold: t }, &scores).to_string());
        }
        cells.push(bt::baselines::f_ex::CATEGORY_COUNT.to_string());
        table.row(cells);
    }

    format!(
        "Fig 20 — keywords retained by KE-z per threshold \
         (distinct profile keywords in the log: {total_keywords}; \
         F-Ex is a fixed ~2000-category mapping):\n{}",
        table.render()
    )
}
