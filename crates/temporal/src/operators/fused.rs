//! Fused fragment execution: a maximal stateless chain (Filter / Project /
//! AlterLifetime) runs as **one pass** over an [`EventBatch`].
//!
//! Instead of materializing an intermediate batch after every operator the
//! fragment carries a *selection vector* — `None` means "all rows", a
//! `Vec<u32>` names the surviving row indices in order. A filter only
//! shrinks the selection (no compaction, no copies); a lifetime rewrite
//! mutates `vt`/`ve` in place at the selected indices (a hopping window's
//! drops shrink the selection); a projection evaluates its expressions over
//! the selected rows via the SIMD kernel suite, writing output columns
//! directly at the compacted length. The batch is gathered/compacted **at
//! most once**, at the fragment boundary (or at the first projection, whose
//! output is already dense).
//!
//! Semantics are byte-identical to running the steps as separate operators
//! in every mode: predicate/expression errors surface for the first failing
//! *surviving* row in row-major order (selection indices are mapped back
//! through `sel` before the scalar re-run that recovers the exact error),
//! and a projection whose result has no dense column form falls back by
//! materializing the current selection once and running the remaining steps
//! through the ordinary row operators.

use crate::batch::EventBatch;
use crate::compiled::CompiledExpr;
use crate::error::{Result, TemporalError};
use crate::exec::StreamData;
use crate::expr::Expr;
use crate::operators::{self, alter_lifetime::transform};
use crate::plan::{FusedStep, LifetimeOp};
use crate::stream::EventStream;
use crate::time::Lifetime;
use relation::{Column, ColumnBatch, Field, Schema};

/// Run a fused fragment over a columnar batch in a single pass. Returns
/// `Rows` only when a projection had to fall back to the row path.
pub fn fused_fragment_batch(mut batch: EventBatch, steps: &[FusedStep]) -> Result<StreamData> {
    let mut sel: Option<Vec<u32>> = None;
    for (k, step) in steps.iter().enumerate() {
        match step {
            FusedStep::Filter { predicate } => {
                let compiled = CompiledExpr::compile(predicate, batch.schema());
                let keep = compiled.eval_predicate_batch_sel(batch.payload(), sel.as_deref())?;
                // Preallocated to the candidate count: a growth realloc mid
                // scan would copy the partial index vector for nothing.
                let mut next = Vec::with_capacity(keep.len());
                match sel {
                    // Dense → first selection: indices of the kept rows.
                    None => {
                        next.extend(
                            keep.iter()
                                .enumerate()
                                .filter_map(|(i, &k)| k.then_some(i as u32)),
                        );
                    }
                    // Shrink the existing selection.
                    Some(s) => {
                        next.extend(s.iter().zip(&keep).filter_map(|(&i, &k)| k.then_some(i)));
                    }
                }
                sel = Some(next);
            }
            FusedStep::Project { exprs } => {
                // An upstream selection is materialized here, in place —
                // the fragment's single compaction, just moved forward to
                // where the projection wants dense inputs. No new batch is
                // allocated, and the now-dense projection *moves*
                // pass-through columns and the lifetime vectors instead of
                // gathering every leaf occurrence separately.
                if let Some(s) = sel.take() {
                    batch.compact(&s);
                }
                match project_dense_owned(batch, exprs)? {
                    DenseProject::Done(out) => batch = out,
                    // Mixed runtime types: finish on rows.
                    DenseProject::Fallback(orig) => return fallback_rows(orig, None, &steps[k..]),
                }
            }
            FusedStep::AlterLifetime { op } => alter_sel(&mut batch, &mut sel, op),
        }
    }
    if let Some(s) = sel {
        batch.compact(&s);
    }
    Ok(StreamData::Batch(batch))
}

/// Run a fused fragment over a row stream: the steps execute as the
/// ordinary compiled operators, in order. This is the universal fallback
/// (ill-typed payloads, GroupApply sub-plans feeding row groups).
pub fn fused_fragment_rows(mut stream: EventStream, steps: &[FusedStep]) -> Result<EventStream> {
    for step in steps {
        stream = match step {
            FusedStep::Filter { predicate } => operators::filter(stream, predicate)?,
            FusedStep::Project { exprs } => operators::project(stream, exprs)?,
            FusedStep::AlterLifetime { op } => operators::alter_lifetime(stream, op)?,
        };
    }
    Ok(stream)
}

/// Materialize the current selection once, then run the remaining steps
/// (starting with the one that could not stay columnar) on the row path.
fn fallback_rows(
    mut batch: EventBatch,
    sel: Option<Vec<u32>>,
    remaining: &[FusedStep],
) -> Result<StreamData> {
    if let Some(s) = sel {
        batch.compact(&s);
    }
    Ok(StreamData::Rows(fused_fragment_rows(
        batch.into_stream(),
        remaining,
    )?))
}

/// Outcome of [`project_dense_owned`]: the projected batch, or the
/// untouched input handed back for the row fallback.
enum DenseProject {
    Done(EventBatch),
    Fallback(EventBatch),
}

/// Dense projection over an **owned** batch. Pass-through `col(name)`
/// expressions *move* their input column, and the lifetime vectors move
/// wholesale — the fragment owns the batch and would drop that storage
/// right after, so nothing is cloned for the shapes a projection merely
/// forwards. Computed expressions run through the SIMD kernel suite
/// exactly like [`project_sel`]; error order is preserved because a
/// pass-through over an existing column can never error.
fn project_dense_owned(batch: EventBatch, exprs: &[(String, Expr)]) -> Result<DenseProject> {
    let in_schema = batch.schema();
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    let compiled: Vec<CompiledExpr> = exprs
        .iter()
        .map(|(_, e)| CompiledExpr::compile(e, in_schema))
        .collect();
    let n = batch.len();
    let evals: Vec<_> = compiled
        .iter()
        .enumerate()
        .filter(|(_, c)| c.as_col().is_none())
        .map(|(j, c)| (j, c.eval_batch_raw_sel(batch.payload(), None)))
        .collect();
    // Row-major error order across all expressions, exactly as
    // `project_batch`: the smallest (row, expr) pair fails first.
    let first_bad = evals
        .iter()
        .filter_map(|(j, ev)| ev.first_err(n).map(|i| (i, *j)))
        .min();
    if let Some((i, j)) = first_bad {
        return Err(match compiled[j].eval(&batch.payload_row(i)) {
            Err(e) => e,
            Ok(_) => TemporalError::Eval("fused/scalar divergence".into()),
        });
    }
    let mut computed: Vec<Option<Column>> = (0..exprs.len()).map(|_| None).collect();
    for (j, ev) in evals {
        match ev.into_column(n) {
            Some(col) => computed[j] = Some(col),
            None => return Ok(DenseProject::Fallback(batch)),
        }
    }
    let (vt, ve, payload) = batch.into_parts();
    let (_, in_cols, _) = payload.into_parts();
    let mut in_cols: Vec<Option<Column>> = in_cols.into_iter().map(Some).collect();
    let mut out_cols: Vec<Column> = Vec::with_capacity(exprs.len());
    for (j, c) in compiled.iter().enumerate() {
        let col = match c.as_col() {
            // Move on first use; a duplicated pass-through clones the
            // column an earlier expression already placed.
            Some(i) => match in_cols[i].take() {
                Some(col) => col,
                None => out_cols
                    .iter()
                    .zip(&compiled)
                    .find(|(_, cc)| cc.as_col() == Some(i))
                    .expect("column moved by an earlier pass-through")
                    .0
                    .clone(),
            },
            None => computed[j].take().expect("computed expression evaluated"),
        };
        out_cols.push(col);
    }
    Ok(DenseProject::Done(EventBatch::new(
        vt,
        ve,
        ColumnBatch::new(out_schema, out_cols, n),
    )))
}

/// Lifetime rewrite at the selected indices, in place — no payload traffic
/// at all. Only a hopping window can drop events; drops shrink the
/// selection rather than compacting the batch.
fn alter_sel(batch: &mut EventBatch, sel: &mut Option<Vec<u32>>, op: &LifetimeOp) {
    let (vt, ve) = batch.times_mut();
    let can_drop = matches!(op, LifetimeOp::Hop { .. });
    match sel.take() {
        // Dense, no drops possible: plain in-place sweep, stay dense.
        None if !can_drop => {
            for i in 0..vt.len() {
                let lt = transform(Lifetime::new(vt[i], ve[i]), op).expect("only hops drop");
                vt[i] = lt.start;
                ve[i] = lt.end;
            }
        }
        cur => {
            let total = vt.len();
            let upper = cur.as_ref().map_or(total, Vec::len);
            let mut survivors = Vec::with_capacity(upper);
            let mut apply = |i: u32| {
                let ii = i as usize;
                if let Some(lt) = transform(Lifetime::new(vt[ii], ve[ii]), op) {
                    vt[ii] = lt.start;
                    ve[ii] = lt.end;
                    survivors.push(i);
                }
            };
            match &cur {
                None => (0..total as u32).for_each(&mut apply),
                Some(s) => s.iter().copied().for_each(&mut apply),
            }
            // A dense batch with no drops stays dense.
            *sel = if cur.is_none() && survivors.len() == total {
                None
            } else {
                Some(survivors)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::expr::{col, lit};
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Id", ColumnType::Int),
            Field::new("V", ColumnType::Long),
        ])
    }

    fn batch() -> EventBatch {
        let s = EventStream::new(
            schema(),
            vec![
                Event::point(10, row![1i32, 100i64]),
                Event::point(20, row![2i32, 200i64]),
                Event::point(30, row![1i32, 300i64]),
                Event::point(40, row![3i32, 400i64]),
            ],
        );
        EventBatch::from_stream(&s).unwrap()
    }

    fn steps() -> Vec<FusedStep> {
        vec![
            FusedStep::Filter {
                predicate: col("Id").eq(lit(1)),
            },
            FusedStep::Project {
                exprs: vec![("V2".into(), col("V").add(lit(1i64)))],
            },
            FusedStep::AlterLifetime {
                op: LifetimeOp::Window(5),
            },
        ]
    }

    #[test]
    fn fragment_matches_sequential_operators() {
        let fused = fused_fragment_batch(batch(), &steps())
            .unwrap()
            .into_stream();
        let sequential = fused_fragment_rows(batch().into_stream(), &steps()).unwrap();
        assert_eq!(fused, sequential);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.events()[0].payload, row![101i64]);
        assert_eq!(fused.events()[0].lifetime, Lifetime::new(10, 15));
    }

    #[test]
    fn filter_chain_shrinks_selection_without_compacting() {
        // Two filters then a shift: one compaction at the fragment end.
        let steps = vec![
            FusedStep::Filter {
                predicate: col("Id").le(lit(2)),
            },
            FusedStep::Filter {
                predicate: col("V").gt(lit(100i64)),
            },
            FusedStep::AlterLifetime {
                op: LifetimeOp::Shift(1),
            },
        ];
        let fused = fused_fragment_batch(batch(), &steps).unwrap().into_stream();
        let sequential = fused_fragment_rows(batch().into_stream(), &steps).unwrap();
        assert_eq!(fused, sequential);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.events()[0].lifetime, Lifetime::point(21));
        assert_eq!(fused.events()[1].lifetime, Lifetime::point(31));
    }

    #[test]
    fn hop_drops_shrink_selection() {
        // hop=100, width=5: only the event at t=100's grid survives... none
        // of 10/20/30/40 reach a report point, so everything drops.
        let steps = vec![FusedStep::AlterLifetime {
            op: LifetimeOp::Hop { hop: 100, width: 5 },
        }];
        let fused = fused_fragment_batch(batch(), &steps).unwrap().into_stream();
        let sequential = fused_fragment_rows(batch().into_stream(), &steps).unwrap();
        assert_eq!(fused, sequential);
        assert!(fused.is_empty());
    }

    #[test]
    fn errors_surface_for_first_surviving_row() {
        // Division by a column that is zero only in surviving rows would
        // change which row errors first if the selection were ignored.
        let s = EventStream::new(
            schema(),
            vec![
                Event::point(1, row![9i32, 0i64]), // filtered out
                Event::point(2, row![1i32, 7i64]),
            ],
        );
        let b = EventBatch::from_stream(&s).unwrap();
        let steps = vec![
            FusedStep::Filter {
                predicate: col("Id").eq(lit(1)),
            },
            FusedStep::Project {
                exprs: vec![("Bad".into(), col("Nope"))],
            },
        ];
        let fused_err = fused_fragment_batch(b, &steps).unwrap_err();
        let rows_err = fused_fragment_rows(s, &steps).unwrap_err();
        assert_eq!(fused_err.to_string(), rows_err.to_string());
    }
}
