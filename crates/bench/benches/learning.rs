//! §V-D learning time as a Criterion benchmark: logistic-regression
//! training cost under each data-reduction scheme (the paper's 31 / 18 /
//! 5 seconds ordering for F-Ex / KE-1.28 / KE-2.56).

use bench::Scale;
use bt::eval::{by_ad, reduce_examples, scores_from_examples, Scheme};
use bt::lr::{train, LrConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_learning(c: &mut Criterion) {
    // Build examples once via the generator + an in-process sweep (the
    // custom example builder), independent of the M-R machinery.
    let mut cfg = Scale::Small.gen_config(3);
    cfg.users = 800;
    let log = adgen::generate(&cfg);
    let rows = log.rows();
    let dfs = mapreduce::Dfs::new();
    dfs.put(
        "logs",
        mapreduce::Dataset::single(adgen::unified_schema(), rows),
    )
    .unwrap();
    let params = bt::BtParams {
        machines: 4,
        horizon: cfg.duration * 2,
        ..Default::default()
    };
    let artifacts = bt::pipeline::BtPipeline::new(params.clone())
        .run(&dfs, &mapreduce::Cluster::new(), "logs", "bench")
        .unwrap();
    let examples =
        bt::pipeline::BtPipeline::load_examples(&dfs, &artifacts.labels, &artifacts.train_rows)
            .unwrap();
    let scores = scores_from_examples(&examples, params.min_support, params.min_example_support);
    let per_ad = by_ad(&examples);
    let ad = "laptop";
    let ad_examples = per_ad.get(ad).cloned().unwrap_or_default();

    let mut group = c.benchmark_group("lr_learning_time");
    group.sample_size(10);
    for scheme in [
        Scheme::FEx,
        Scheme::KeZ { threshold: 1.28 },
        Scheme::KeZ { threshold: 2.56 },
    ] {
        let reduced = reduce_examples(ad, &ad_examples, &scheme, &scores);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.to_string()),
            &reduced,
            |b, data| b.iter(|| train(data, &LrConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
