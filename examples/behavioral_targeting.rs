//! The paper's headline application end-to-end: behavioral targeting as
//! temporal queries on TiMR (paper §IV).
//!
//! Generates an ad log with planted keyword/click correlations, runs the
//! four-job pipeline (BotElim → labels → training rows → feature
//! selection), trains per-ad logistic regression on z-test-reduced
//! features, and reports what a targeting system cares about: recovered
//! keywords and CTR lift at low coverage.
//!
//! ```text
//! cargo run --release --example behavioral_targeting
//! ```

use timr_suite::adgen::{generate, GenConfig};
use timr_suite::bt::eval::{
    by_ad, lift_coverage, scores_from_examples, split_by_time, train_models, Scheme,
};
use timr_suite::bt::lr::LrConfig;
use timr_suite::bt::pipeline::BtPipeline;
use timr_suite::bt::BtParams;
use timr_suite::mapreduce::{Cluster, Dataset, Dfs};

fn main() {
    // 1. Data: one generated day, 800 users, 5 ad classes with planted
    //    positive/negative keywords (the icarly → deodorant effect).
    let mut cfg = GenConfig::small(7);
    cfg.users = 800;
    let log = generate(&cfg);
    println!(
        "generated {} events; overall CTR {:.3}",
        log.events.len(),
        log.overall_ctr()
    );

    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(timr_suite::adgen::unified_schema(), log.rows()),
    )
    .expect("fresh DFS");

    // 2. The temporal-query pipeline on TiMR.
    let params = BtParams {
        machines: 8,
        horizon: cfg.duration * 2,
        ..Default::default()
    };
    let artifacts = BtPipeline::new(params.clone())
        .run(&dfs, &Cluster::new(), "logs", "bt")
        .expect("pipeline runs");
    for (job, stats) in &artifacts.stats {
        println!(
            "  job {job:<22} stages={} shuffled={} bytes",
            stats.stages.len(),
            stats.total_shuffle_bytes()
        );
    }

    // 3. What did feature selection find? Top keywords for the deodorant
    //    ad, checked against the generator's ground truth.
    let scores = BtPipeline::load_scores(&dfs, &artifacts.scores).expect("scores");
    let mut deo: Vec<_> = scores.iter().filter(|s| s.ad == "deodorant").collect();
    deo.sort_by(|a, b| b.z.total_cmp(&a.z));
    println!("\ntop keywords for the deodorant ad (z-test, paper Fig 17):");
    for s in deo.iter().take(6) {
        let planted = log.truth.positive_keywords["deodorant"].contains(&s.keyword);
        println!(
            "  {:<12} z = {:>6.2}   planted positive: {planted}",
            s.keyword, s.z
        );
    }

    // 4. Train and evaluate: 50/50 time split, KE-z at 80% confidence.
    let examples = BtPipeline::load_examples(&dfs, &artifacts.labels, &artifacts.train_rows)
        .expect("examples");
    let mid = cfg.duration / 2;
    let (train, test) = split_by_time(&examples, mid);
    let train_scores = scores_from_examples(&train, params.min_support, params.min_example_support);
    let scheme = Scheme::KeZ { threshold: 1.28 };
    let models = train_models(&by_ad(&train), &scheme, &train_scores, &LrConfig::default());

    println!("\nCTR lift at low coverage (test split):");
    let test_by_ad = by_ad(&test);
    for (ad, model) in &models {
        let Some(test_examples) = test_by_ad.get(ad) else {
            continue;
        };
        let curve = lift_coverage(ad, model, test_examples, &scheme, &train_scores, &[0.1]);
        println!(
            "  {:<10} lift@10% = {:+.3} (test CTR {:.3}; {} model dims, {:.2} mean UBP entries)",
            ad,
            curve[0].lift,
            curve[0].ctr - curve[0].lift,
            model.dimensions,
            model.mean_entries
        );
    }
}
