//! # timr-suite
//!
//! Facade crate for the reproduction of *Temporal Analytics on Big Data for
//! Web Advertising* (Chandramouli, Goldstein, Duan — ICDE 2012).
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single package:
//!
//! - [`relation`] — shared data model (values, schemas, rows, codec, stats);
//! - [`simd`] — the dependency-free portable-SIMD shim behind the fused
//!   kernels (fixed-width lanes over plain arrays, stable Rust only);
//! - [`temporal`] — the single-node temporal DSMS (events, CQ plans,
//!   operators, batch + incremental executors);
//! - [`mapreduce`] — the deterministic map-reduce runtime and in-memory DFS;
//! - [`timr`] — the TiMR framework: plan annotation, cost-based optimization,
//!   fragmentation, M-R compilation, and temporal partitioning;
//! - [`adgen`] — the synthetic advertising-log generator with ground truth;
//! - [`bt`] — the end-to-end behavioral-targeting solution built from
//!   temporal queries.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use adgen;
pub use bt;
pub use mapreduce;
pub use relation;
pub use simd;
pub use temporal;
pub use timr;
