//! Stages, partitioners, and reducers (the basic M-R model, paper §II-B).

use crate::error::{MrError, Result};
use relation::hash::{bucket_of, key_hash, stable_hash};
use relation::{ColumnBatch, Row, Schema};
use std::sync::Arc;

/// The map phase: how rows are assigned to reduce partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// `hash(key columns) mod partitions` — the paper's hash-bucketing trick
    /// (§III-C.3) that keeps one reducer (and one embedded DSMS instance)
    /// per machine rather than per key value.
    KeyHash {
        /// Key column names.
        columns: Vec<String>,
    },
    /// Partition on the value of a computed bucket column (used by TiMR's
    /// temporal partitioning, where the "key" is a span index and rows can
    /// be replicated across spans upstream of the shuffle).
    BucketColumn {
        /// Column holding a non-negative bucket index.
        column: String,
    },
    /// Deterministic spread ignoring content (row-hash based), for
    /// stateless fragments with no key requirement.
    Spread,
    /// Everything to partition 0 (a single-node stage).
    Single,
}

impl Partitioner {
    /// Resolve column names against `schema` once, yielding an assigner
    /// usable in the map hot loop without per-row name lookups.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPartitioner> {
        Ok(match self {
            Partitioner::KeyHash { columns } => {
                let mut indices = Vec::with_capacity(columns.len());
                for c in columns {
                    indices.push(schema.index_of(c)?);
                }
                CompiledPartitioner::KeyHash { indices }
            }
            Partitioner::BucketColumn { column } => CompiledPartitioner::BucketColumn {
                column: column.clone(),
                index: schema.index_of(column)?,
            },
            Partitioner::Spread => CompiledPartitioner::Spread,
            Partitioner::Single => CompiledPartitioner::Single,
        })
    }

    /// Assign `row` (with `schema`) to one of `partitions` buckets.
    ///
    /// Convenience for one-off assignments; bulk callers should
    /// [`Partitioner::compile`] once and assign through that.
    pub fn assign(&self, schema: &Schema, row: &Row, partitions: usize) -> Result<usize> {
        self.compile(schema)?.assign(row, partitions)
    }
}

/// A [`Partitioner`] with its column references resolved to indices for a
/// specific input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPartitioner {
    /// Hash of the key cells at `indices`.
    KeyHash { indices: Vec<usize> },
    /// Value of the bucket cell at `index` (name kept for diagnostics).
    BucketColumn { column: String, index: usize },
    /// Whole-row hash.
    Spread,
    /// Everything to partition 0.
    Single,
}

impl CompiledPartitioner {
    /// Assign `row` to one of `partitions` buckets.
    pub fn assign(&self, row: &Row, partitions: usize) -> Result<usize> {
        Ok(match self {
            CompiledPartitioner::KeyHash { indices } => {
                bucket_of(key_hash(row, indices), partitions)
            }
            CompiledPartitioner::BucketColumn { column, index } => {
                let v = row.get(*index).as_long().ok_or_else(|| {
                    MrError::BadStage(format!("bucket column `{column}` is not integral"))
                })?;
                if v < 0 {
                    return Err(MrError::BadStage(format!(
                        "bucket column `{column}` holds negative value {v}"
                    )));
                }
                (v as usize) % partitions
            }
            CompiledPartitioner::Spread => bucket_of(stable_hash(row), partitions),
            CompiledPartitioner::Single => 0,
        })
    }
}

/// Context handed to a reducer invocation.
#[derive(Debug, Clone)]
pub struct ReducerContext {
    /// Stage name (for diagnostics).
    pub stage: String,
    /// This invocation's partition index.
    pub partition: usize,
    /// Total partition count of the stage.
    pub partitions: usize,
    /// Execution attempt (0 = first try; >0 after a contained panic,
    /// transient fault, or detected corruption forced a retry).
    pub attempt: usize,
    /// Worker pool for intra-reducer parallelism (the cluster's
    /// `dsms_threads` knob): the embedded DSMS fans GroupApply groups out
    /// on it. All pool results merge in deterministic task order, so using
    /// it never violates the reducer purity contract below.
    pub dsms_pool: Arc<pool::WorkerPool>,
}

impl ReducerContext {
    /// A context for driving a reducer by hand (tests, baselines): named
    /// stage/partition, first attempt, sequential DSMS pool.
    pub fn standalone(stage: impl Into<String>, partition: usize, partitions: usize) -> Self {
        ReducerContext {
            stage: stage.into(),
            partition,
            partitions,
            attempt: 0,
            dsms_pool: Arc::new(pool::WorkerPool::sequential()),
        }
    }

    /// Whether this invocation is a restart of a previously failed
    /// attempt. Reducers must not branch on this for anything that
    /// changes their output (purity contract below); it exists for
    /// logging and test assertions.
    pub fn is_retry(&self) -> bool {
        self.attempt > 0
    }
}

/// The reduce phase: user code invoked once per partition.
///
/// A reducer receives, for each stage input dataset, the rows of *its*
/// partition (in deterministic shuffle order) and returns output rows. It
/// must be a pure function of `(ctx.partition, inputs)` — the restart
/// determinism tests re-invoke reducers and compare bytes.
///
/// Inputs are borrowed: the runtime hands every attempt (including
/// failure-injected restarts) the same shuffle buckets without copying
/// them, so reducers clone only what they keep.
///
/// A reducer that panics does not tear down the job: the cluster contains
/// the panic (`catch_unwind`), surfaces it as a retryable task error with
/// the payload preserved, and re-invokes the reducer up to the configured
/// retry budget. A reducer that *always* panics therefore fails the job
/// deterministically with an exhaustion error naming its partition.
pub trait Reducer: Send + Sync {
    /// Output schema, given the input schemas (one per stage input).
    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema>;

    /// Process one partition.
    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>>;

    /// Process one partition straight from the shuffle's native stored
    /// forms: a decoded [`ColumnBatch`] when every chunk of an input
    /// shipped as a binary extent, rows otherwise.
    ///
    /// The default materializes rows and calls [`Reducer::reduce`], so
    /// existing reducers keep working; columnar-aware reducers (the
    /// embedded DSMS) override this to consume the batch copy-free
    /// instead of re-parsing rows.
    fn reduce_shuffled(&self, ctx: &ReducerContext, inputs: &[ReduceInput]) -> Result<Vec<Row>> {
        let rows: Vec<Vec<Row>> = inputs.iter().map(ReduceInput::to_rows).collect();
        self.reduce(ctx, &rows)
    }

    /// Number of output datasets (sinks) this reducer produces. Almost all
    /// reducers produce one; a multi-sink reducer (the shared multi-query
    /// DSMS) routes each query's rows to its own sink and must agree with
    /// the stage's declared `1 + aux_outputs.len()`.
    fn sink_count(&self) -> usize {
        1
    }

    /// Output schema per sink, given the input schemas. The default wraps
    /// [`Reducer::output_schema`] as the single sink.
    fn sink_schemas(&self, inputs: &[Schema]) -> Result<Vec<Schema>> {
        Ok(vec![self.output_schema(inputs)?])
    }

    /// Process one partition, emitting rows per sink (same order as
    /// [`Reducer::sink_schemas`]). The default wraps
    /// [`Reducer::reduce_shuffled`] as the single sink; the purity
    /// contract above applies to every sink's bytes.
    fn reduce_shuffled_multi(
        &self,
        ctx: &ReducerContext,
        inputs: &[ReduceInput],
    ) -> Result<Vec<Vec<Row>>> {
        Ok(vec![self.reduce_shuffled(ctx, inputs)?])
    }
}

/// One stage input's shuffled partition, in the form it arrived in.
#[derive(Debug, Clone)]
pub enum ReduceInput {
    /// Every shuffle chunk of this input was a binary columnar extent;
    /// they decode and concatenate into one batch.
    Batch(ColumnBatch),
    /// At least one chunk could not transpose (ill-typed rows), so the
    /// whole input is materialized as rows.
    Rows(Vec<Row>),
}

impl ReduceInput {
    /// Number of rows in this input.
    pub fn len(&self) -> usize {
        match self {
            ReduceInput::Batch(b) => b.len(),
            ReduceInput::Rows(r) => r.len(),
        }
    }

    /// True when this input holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize as rows (copies; the row path of [`Reducer::reduce`]).
    pub fn to_rows(&self) -> Vec<Row> {
        match self {
            ReduceInput::Batch(b) => b.to_rows(),
            ReduceInput::Rows(r) => r.clone(),
        }
    }

    /// Materialize as rows, consuming the input: the `Rows` form moves
    /// without copying a whole partition (a batch still transposes).
    /// Prefer this over [`ReduceInput::to_rows`] whenever the input is
    /// owned — the cluster keeps shuffle buckets shared across retry
    /// attempts, but reducers handed owned inputs should not clone them.
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            ReduceInput::Batch(b) => b.to_rows(),
            ReduceInput::Rows(r) => r,
        }
    }
}

/// Shared reducer handle.
pub type ReducerRef = Arc<dyn Reducer>;

/// Context handed to a mapper invocation (one per input extent).
#[derive(Debug, Clone)]
pub struct MapperContext {
    /// Stage name (for diagnostics).
    pub stage: String,
    /// Stage input index the extent belongs to.
    pub input: usize,
    /// Extent index within the input dataset.
    pub extent: usize,
    /// Execution attempt (0 = first try; >0 after a contained fault
    /// forced the map task to re-run). Mappers must not branch on this
    /// for anything that changes their output.
    pub attempt: usize,
    /// Worker pool for intra-mapper parallelism (same deterministic
    /// contract as [`ReducerContext::dsms_pool`]).
    pub dsms_pool: Arc<pool::WorkerPool>,
}

impl MapperContext {
    /// A context for driving a mapper by hand (tests, benches).
    pub fn standalone(stage: impl Into<String>, input: usize, extent: usize) -> Self {
        MapperContext {
            stage: stage.into(),
            input,
            extent,
            attempt: 0,
            dsms_pool: Arc::new(pool::WorkerPool::sequential()),
        }
    }
}

/// The map phase's compute hook: user code run once per `(input, extent)`
/// pair, *before* partitioning, inside the same chaos-containment/retry/
/// integrity envelope as reducers.
///
/// A mapper receives one input extent's rows and returns the rows to
/// shuffle in their place. It must be a pure function of
/// `(ctx.input, rows)` — the same byte-determinism contract as
/// [`Reducer`]: shuffle rebuilds after detected corruption re-invoke the
/// mapper and must reproduce identical bytes, and the restart-determinism
/// tests compare them. In particular output may not depend on
/// `ctx.extent`, `ctx.attempt`, wall time, or thread scheduling.
///
/// Batch-native implementations (the embedded DSMS fragment mapper)
/// transpose the extent into a `ColumnBatch` once and run columnar
/// kernels over it, falling back to rows when the extent is ill-typed;
/// output rows are sealed into framed binary extents by the shuffle
/// exactly like raw rows, so everything downstream (spill, integrity,
/// rebuild) applies unchanged.
pub trait Mapper: Send + Sync {
    /// Output schema for stage input `input`, given its dataset schema.
    /// The shuffle seals chunks — and the partitioner resolves key
    /// columns — against this schema.
    fn output_schema(&self, input: usize, schema: &Schema) -> Result<Schema>;

    /// Transform one extent of stage input `input`. Returning `None`
    /// passes the extent through unchanged (the identity for inputs this
    /// mapper does not cover).
    fn map(&self, ctx: &MapperContext, rows: &[Row]) -> Result<Option<Vec<Row>>>;
}

/// Shared mapper handle.
pub type MapperRef = Arc<dyn Mapper>;

/// One map-reduce stage.
#[derive(Clone)]
pub struct Stage {
    /// Stage name (unique within a job).
    pub name: String,
    /// Input dataset names.
    pub inputs: Vec<String>,
    /// Output dataset name.
    pub output: String,
    /// Extra output dataset names for sinks `1..` of a multi-sink reducer
    /// (empty for ordinary single-sink stages). Sink `i` of
    /// [`Reducer::reduce_shuffled_multi`] publishes to
    /// `[output, aux_outputs...][i]`.
    pub aux_outputs: Vec<String>,
    /// Map-phase partitioner (applied to every input).
    pub partitioner: Partitioner,
    /// Number of reduce partitions.
    pub partitions: usize,
    /// Reduce-phase user code.
    pub reducer: ReducerRef,
    /// Optional map-phase compute (plan push-down): run per input extent
    /// before partitioning. `None` leaves the map phase partition-only.
    pub mapper: Option<MapperRef>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("output", &self.output)
            .field("aux_outputs", &self.aux_outputs)
            .field("partitioner", &self.partitioner)
            .field("partitions", &self.partitions)
            .field("has_mapper", &self.mapper.is_some())
            .finish_non_exhaustive()
    }
}

impl Stage {
    /// Build a stage.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
        partitioner: Partitioner,
        partitions: usize,
        reducer: ReducerRef,
    ) -> Result<Self> {
        let name = name.into();
        if inputs.is_empty() {
            return Err(MrError::BadStage(format!("stage `{name}` has no inputs")));
        }
        if partitions == 0 {
            return Err(MrError::BadStage(format!(
                "stage `{name}` has zero partitions"
            )));
        }
        Ok(Stage {
            name,
            inputs,
            output: output.into(),
            aux_outputs: Vec::new(),
            partitioner,
            partitions,
            reducer,
            mapper: None,
        })
    }

    /// Declare extra sinks for a multi-sink reducer (sinks `1..`; the
    /// primary `output` is sink 0).
    pub fn with_aux_outputs(mut self, aux_outputs: Vec<String>) -> Self {
        self.aux_outputs = aux_outputs;
        self
    }

    /// Attach a map-phase compute hook (plan push-down).
    pub fn with_mapper(mut self, mapper: MapperRef) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// All output dataset names: the primary followed by the aux sinks.
    pub fn sink_names(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.output.as_str()).chain(self.aux_outputs.iter().map(String::as_str))
    }
}

/// A reducer that passes rows through unchanged — the identity stage, useful
/// for repartitioning datasets and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
        inputs
            .first()
            .cloned()
            .ok_or_else(|| MrError::BadStage("identity reducer with no input".into()))
    }

    fn reduce(&self, _ctx: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
        Ok(inputs.iter().flatten().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Bucket", ColumnType::Long),
        ])
    }

    #[test]
    fn key_hash_groups_same_keys() {
        let p = Partitioner::KeyHash {
            columns: vec!["UserId".into()],
        };
        let s = schema();
        let a = p.assign(&s, &row![1i64, "u1", 0i64], 16).unwrap();
        let b = p.assign(&s, &row![99i64, "u1", 5i64], 16).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bucket_column_uses_value_mod_partitions() {
        let p = Partitioner::BucketColumn {
            column: "Bucket".into(),
        };
        let s = schema();
        assert_eq!(p.assign(&s, &row![1i64, "u", 5i64], 4).unwrap(), 1);
        assert_eq!(p.assign(&s, &row![1i64, "u", 3i64], 4).unwrap(), 3);
        assert!(p.assign(&s, &row![1i64, "u", -1i64], 4).is_err());
    }

    #[test]
    fn compiled_partitioner_matches_uncompiled() {
        let s = schema();
        let rows = [
            row![1i64, "u1", 0i64],
            row![2i64, "u2", 5i64],
            row![3i64, "u3", 7i64],
        ];
        for p in [
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            Partitioner::BucketColumn {
                column: "Bucket".into(),
            },
            Partitioner::Spread,
            Partitioner::Single,
        ] {
            let compiled = p.compile(&s).unwrap();
            for r in &rows {
                assert_eq!(
                    compiled.assign(r, 8).unwrap(),
                    p.assign(&s, r, 8).unwrap(),
                    "{p:?} on {r:?}"
                );
            }
        }
    }

    #[test]
    fn compile_rejects_unknown_columns() {
        let p = Partitioner::KeyHash {
            columns: vec!["Nope".into()],
        };
        assert!(p.compile(&schema()).is_err());
    }

    #[test]
    fn single_sends_everything_to_zero() {
        let p = Partitioner::Single;
        assert_eq!(p.assign(&schema(), &row![1i64, "u", 0i64], 8).unwrap(), 0);
    }

    #[test]
    fn stage_validation() {
        let r: ReducerRef = Arc::new(IdentityReducer);
        assert!(Stage::new("s", vec![], "out", Partitioner::Single, 1, r.clone()).is_err());
        assert!(Stage::new("s", vec!["in".into()], "out", Partitioner::Single, 0, r).is_err());
    }

    #[test]
    fn identity_reducer_flattens_inputs() {
        let ctx = ReducerContext::standalone("s", 0, 1);
        let out = IdentityReducer
            .reduce(&ctx, &[vec![row![1i64]], vec![row![2i64]]])
            .unwrap();
        assert_eq!(out, vec![row![1i64], row![2i64]]);
    }
}
