//! The experiment implementations, one module per paper artifact.
//!
//! Every experiment consumes a shared [`Ctx`] (workload + lazily-computed
//! pipeline artifacts) and returns a printable report.

pub mod bench_pr1;
pub mod bench_pr10;
pub mod bench_pr2;
pub mod bench_pr3;
pub mod bench_pr4;
pub mod bench_pr5;
pub mod bench_pr6;
pub mod bench_pr7;
pub mod bench_pr8;
pub mod bench_pr9;
pub mod bots;
pub mod ex3;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod memlt;
pub mod rt_exp;

use crate::{Scale, Workload};
use bt::eval::split_by_time;
use bt::example::Example;
use bt::pipeline::{BtPipeline, KeywordScore, PipelineArtifacts};

/// Shared experiment context: one workload, one pipeline run.
pub struct Ctx {
    /// The workload (log + DFS + cluster).
    pub workload: Workload,
    artifacts: Option<PipelineArtifacts>,
    examples: Option<Vec<Example>>,
    scores: Option<Vec<KeywordScore>>,
}

impl Ctx {
    /// Build a context at `scale`.
    pub fn new(scale: Scale, seed: u64) -> Ctx {
        Ctx {
            workload: Workload::build(scale, seed),
            artifacts: None,
            examples: None,
            scores: None,
        }
    }

    /// Run (or reuse) the TiMR BT pipeline over the full log.
    pub fn artifacts(&mut self) -> &PipelineArtifacts {
        if self.artifacts.is_none() {
            let pipeline = BtPipeline::new(self.workload.bt_params());
            let artifacts = pipeline
                .run(&self.workload.dfs, &self.workload.cluster, "logs", "bt")
                .expect("pipeline run");
            self.artifacts = Some(artifacts);
        }
        self.artifacts.as_ref().expect("just set")
    }

    /// Keyword z-scores from the full-log pipeline run.
    pub fn scores(&mut self) -> &[KeywordScore] {
        if self.scores.is_none() {
            let dataset = self.artifacts().scores.clone();
            let scores =
                BtPipeline::load_scores(&self.workload.dfs, &dataset).expect("load scores");
            self.scores = Some(scores);
        }
        self.scores.as_deref().expect("just set")
    }

    /// Labelled examples with sparse profiles from the full-log run.
    pub fn examples(&mut self) -> &[Example] {
        if self.examples.is_none() {
            let (labels, train_rows) = {
                let a = self.artifacts();
                (a.labels.clone(), a.train_rows.clone())
            };
            let examples = BtPipeline::load_examples(&self.workload.dfs, &labels, &train_rows)
                .expect("load examples");
            self.examples = Some(examples);
        }
        self.examples.as_deref().expect("just set")
    }

    /// 50/50 train/test split of the examples (paper §V-A).
    pub fn split(&mut self) -> (Vec<Example>, Vec<Example>) {
        let mid = {
            let log = &self.workload.log;
            let first = log.events.first().map(|e| e.time).unwrap_or(0);
            let last = log.events.last().map(|e| e.time).unwrap_or(0);
            first + (last - first) / 2
        };
        split_by_time(self.examples(), mid)
    }
}

/// One registered experiment.
pub struct Experiment {
    /// CLI name.
    pub name: &'static str,
    /// Paper artifact it regenerates.
    pub artifact: &'static str,
    /// Runner.
    pub run: fn(&mut Ctx) -> String,
}

/// All experiments in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig14",
            artifact: "Fig 14: development effort and processing time, TiMR vs custom reducers",
            run: fig14::run,
        },
        Experiment {
            name: "fig15",
            artifact: "Fig 15: per-machine DSMS event throughput per BT sub-query",
            run: fig15::run,
        },
        Experiment {
            name: "fig16",
            artifact: "Fig 16: temporal partitioning runtime vs span width",
            run: fig16::run,
        },
        Experiment {
            name: "ex3",
            artifact: "Example 3 / §V-B: fragment optimization (one vs two partitionings)",
            run: ex3::run,
        },
        Experiment {
            name: "fig17",
            artifact: "Figs 17-19: top ± keywords with z-scores per ad class",
            run: fig17::run,
        },
        Experiment {
            name: "fig20",
            artifact: "Fig 20: dimensionality reduction vs z threshold",
            run: fig20::run,
        },
        Experiment {
            name: "fig21",
            artifact: "Fig 21: keyword elimination and CTR lift over example subsets",
            run: fig21::run,
        },
        Experiment {
            name: "fig22",
            artifact: "Figs 22-23: CTR lift vs coverage per data-reduction scheme",
            run: fig22::run,
        },
        Experiment {
            name: "memlt",
            artifact: "§V-D: UBP memory and LR learning time per scheme",
            run: memlt::run,
        },
        Experiment {
            name: "bots",
            artifact: "§IV-B.1: bot user share vs bot activity share",
            run: bots::run,
        },
        Experiment {
            name: "rt",
            artifact: "§VII: real-time readiness — online output equals offline output",
            run: rt_exp::run,
        },
        Experiment {
            name: "pr1",
            artifact: "PR 1: parallel map/shuffle speedup (writes BENCH_PR1.json)",
            run: bench_pr1::run,
        },
        Experiment {
            name: "pr2",
            artifact:
                "PR 2: compiled DSMS hot path vs interpreted baseline (writes BENCH_PR2.json)",
            run: bench_pr2::run,
        },
        Experiment {
            name: "pr3",
            artifact: "PR 3: parallel GroupApply on the shared worker pool (writes BENCH_PR3.json)",
            run: bench_pr3::run,
        },
        Experiment {
            name: "pr4",
            artifact: "PR 4: columnar batches with vectorized execution vs the compiled row path \
                 (writes BENCH_PR4.json)",
            run: bench_pr4::run,
        },
        Experiment {
            name: "pr5",
            artifact: "PR 5: chaos-engine fault-free overhead and recovery runtime \
                 (writes BENCH_PR5.json)",
            run: bench_pr5::run,
        },
        Experiment {
            name: "pr6",
            artifact: "PR 6: binary columnar extents, shuffle-byte cut, and budgeted spill \
                 (writes BENCH_PR6.json)",
            run: bench_pr6::run,
        },
        Experiment {
            name: "pr7",
            artifact: "PR 7: fused single-pass SIMD fragments vs the columnar engine \
                 (writes BENCH_PR7.json)",
            run: bench_pr7::run,
        },
        Experiment {
            name: "pr8",
            artifact: "PR 8: shared multi-query execution vs N independent advertiser jobs \
                 (writes BENCH_PR8.json)",
            run: bench_pr8::run,
        },
        Experiment {
            name: "pr9",
            artifact: "PR 9: map-side push-down — mapper fragments + partial aggregation before \
                 the shuffle (writes BENCH_PR9.json)",
            run: bench_pr9::run,
        },
        Experiment {
            name: "pr10",
            artifact: "PR 10: multi-process worker backend — thread vs process wall time, \
                 SIGKILL recovery, speculation benefit (writes BENCH_PR10.json)",
            run: bench_pr10::run,
        },
    ]
}
