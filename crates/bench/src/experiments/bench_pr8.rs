//! PR 8 acceptance benchmark: shared multi-query execution vs N
//! independent jobs.
//!
//! The workload is the advertiser-dashboard set
//! ([`bt::queries::advertisers`]): every query scans the same log, runs
//! the same bot elimination (paper §IV-B.1), and differs only in its
//! hopping-window cadence and ad filter. Independently, each of N queries
//! is one TiMR job that re-pays the scan + bot-elimination + shuffle cost;
//! shared, the whole set is ONE job — the common prefix merged by
//! [`temporal::plan::share_plans`], the harmonic cadences collapsed by the
//! factor-window rewrite, and each query's rows routed to its own sink.
//!
//! For each query count the experiment measures both sides' stage wall
//! time and verifies, per query, that the shared run's DFS partitions are
//! **byte-identical** to the independent run's. At the smallest multi-query
//! count the identity check runs in all four DSMS execution modes
//! (interpreted, compiled, columnar, fused). Results go to
//! `BENCH_PR8.json`; the headline is the shared-vs-independent speedup at
//! 16 queries (acceptance: ≥2x).
//!
//! `TIMR_PR8_QUERIES=1,4,16,64` overrides the measured counts.

use crate::table::Table;
use bt::queries::advertisers::{advertiser_query, shared_job};
use mapreduce::Dfs;
use std::time::Duration;
use temporal::exec::ExecMode;
use timr::multi::{MultiTimrJob, MultiTimrOutput};
use timr::ExchangeKey;

/// Query counts to measure (`TIMR_PR8_QUERIES` overrides).
fn counts() -> Vec<usize> {
    std::env::var("TIMR_PR8_QUERIES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 16, 64])
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Interleaved repetitions; fewer at large counts where the independent
/// side alone runs N full jobs.
fn reps(n: usize) -> usize {
    if n <= 4 {
        3
    } else {
        1
    }
}

struct Side {
    wall: Duration,
    /// Raw output partitions per query, from the *last* run (identical
    /// across runs by the determinism contract).
    bytes: Vec<Vec<Vec<relation::Row>>>,
}

fn job_wall(out: &MultiTimrOutput) -> Duration {
    out.stats.stages.iter().map(|s| s.wall_time).sum()
}

fn collect_bytes(dfs: &Dfs, datasets: &[String]) -> Vec<Vec<Vec<relation::Row>>> {
    datasets
        .iter()
        .map(|d| dfs.get(d).unwrap().partitions.as_ref().clone())
        .collect()
}

/// One shared run of `n` queries.
fn run_shared(
    params: &bt::BtParams,
    dfs: &Dfs,
    cluster: &mapreduce::Cluster,
    n: usize,
    mode: ExecMode,
) -> (MultiTimrOutput, Vec<Vec<Vec<relation::Row>>>) {
    let out = shared_job(params, n)
        .with_exec_mode(mode)
        .run(dfs, cluster)
        .expect("shared job runs");
    let bytes = collect_bytes(dfs, &out.datasets);
    (out, bytes)
}

/// `n` independent single-query jobs; returns total wall + per-query bytes.
fn run_independent(
    params: &bt::BtParams,
    dfs: &Dfs,
    cluster: &mapreduce::Cluster,
    n: usize,
    mode: ExecMode,
) -> Side {
    let mut wall = Duration::ZERO;
    let mut bytes = Vec::with_capacity(n);
    for i in 0..n {
        let out = MultiTimrJob::new(format!("adv_solo{i}"), vec![advertiser_query(params, i)])
            .with_key(ExchangeKey::keys(&["UserId"]))
            .with_machines(params.machines)
            .with_exec_mode(mode)
            .run(dfs, cluster)
            .expect("independent job runs");
        wall += job_wall(&out);
        bytes.extend(collect_bytes(dfs, &out.datasets));
    }
    Side { wall, bytes }
}

/// Run the experiment.
pub fn run(ctx: &mut super::Ctx) -> String {
    let params = ctx.workload.bt_params();
    let dfs = &ctx.workload.dfs;
    let cluster = &ctx.workload.cluster;
    let counts = counts();
    let log_rows = dfs.get("logs").expect("workload log").len();

    let mut table = Table::new(&[
        "Queries",
        "Independent ms",
        "Shared ms",
        "Speedup",
        "Nodes merged",
        "Factored",
    ]);
    let mut json_counts = Vec::new();
    let mut speedup_at_16 = 0.0f64;

    for &n in &counts {
        // Interleave shared/independent repetitions and keep each side's
        // fastest run, so transient noise lands on both sides evenly.
        let mut best_shared: Option<(MultiTimrOutput, Vec<_>)> = None;
        let mut best_indep: Option<Side> = None;
        for _ in 0..reps(n) {
            let (out, bytes) = run_shared(&params, dfs, cluster, n, ExecMode::Compiled);
            best_shared = Some(match best_shared {
                Some(prev) if job_wall(&prev.0) <= job_wall(&out) => prev,
                _ => (out, bytes),
            });
            let side = run_independent(&params, dfs, cluster, n, ExecMode::Compiled);
            best_indep = Some(match best_indep {
                Some(prev) if prev.wall <= side.wall => prev,
                _ => side,
            });
        }
        let (shared, shared_bytes) = best_shared.expect("reps > 0");
        let indep = best_indep.expect("reps > 0");

        assert_eq!(
            shared_bytes, indep.bytes,
            "{n} queries: shared and independent outputs must be byte-identical"
        );

        let speedup = indep.wall.as_secs_f64() / job_wall(&shared).as_secs_f64().max(1e-9);
        if n == 16 {
            speedup_at_16 = speedup;
        }
        table.row(vec![
            n.to_string(),
            format!("{:.1}", ms(indep.wall)),
            format!("{:.1}", ms(job_wall(&shared))),
            format!("{speedup:.2}x"),
            format!(
                "{} → {}",
                shared.shared.input_nodes, shared.shared.merged_nodes
            ),
            shared.factored_groups.to_string(),
        ]);
        json_counts.push(serde_json::Value::Object(vec![
            ("queries".into(), serde_json::Value::UInt(n as u64)),
            (
                "independent_ms".into(),
                serde_json::Value::Float(ms(indep.wall)),
            ),
            (
                "shared_ms".into(),
                serde_json::Value::Float(ms(job_wall(&shared))),
            ),
            ("speedup".into(), serde_json::Value::Float(speedup)),
            (
                "input_nodes".into(),
                serde_json::Value::UInt(shared.shared.input_nodes as u64),
            ),
            (
                "merged_nodes".into(),
                serde_json::Value::UInt(shared.shared.merged_nodes as u64),
            ),
            (
                "shared_nodes".into(),
                serde_json::Value::UInt(shared.shared.shared_nodes as u64),
            ),
            (
                "factored_groups".into(),
                serde_json::Value::UInt(shared.factored_groups as u64),
            ),
        ]));
    }

    // Four-mode identity anchor at the smallest multi-query count: every
    // DSMS execution mode must write the same per-query bytes, shared and
    // independent.
    let anchor_n = counts.iter().copied().find(|&n| n > 1).unwrap_or(1);
    let (_, reference) = run_shared(&params, dfs, cluster, anchor_n, ExecMode::Compiled);
    for mode in [ExecMode::Interpreted, ExecMode::Columnar, ExecMode::Fused] {
        let (_, bytes) = run_shared(&params, dfs, cluster, anchor_n, mode);
        assert_eq!(
            reference, bytes,
            "{mode:?} shared run must write the same bytes as Compiled"
        );
    }

    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr8".into())),
        ("log_rows".into(), serde_json::Value::UInt(log_rows as u64)),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        ("counts".into(), serde_json::Value::Array(json_counts)),
        (
            "speedup_at_16".into(),
            serde_json::Value::Float(speedup_at_16),
        ),
        (
            "speedup_ge_2x_at_16".into(),
            serde_json::Value::Bool(speedup_at_16 >= 2.0),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR8.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR8.json: {e}");
    }

    format!(
        "PR 8 — shared multi-query execution vs independent jobs over {log_rows} log rows \
         (written to BENCH_PR8.json):\n{}\
         per-query outputs byte-identical (all four exec modes at n={anchor_n}); \
         speedup at 16 queries: {speedup_at_16:.2}x\n",
        table.render(),
    )
}
