//! Vendored minimal `rand` API: exactly the surface this workspace uses.
//!
//! `rngs::SmallRng` is xoshiro256++ (the same family the real crate uses
//! for `SmallRng` on 64-bit targets), seeded through SplitMix64 from
//! `seed_from_u64`. Everything is deterministic for a given seed, which
//! the workload generator's ground-truth reproducibility relies on.

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "from all representable values" (the real
/// crate's `Standard` distribution). `f64` samples uniformly in `[0, 1)`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding up to the (exclusive) end.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty good for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream expands the seed into full state.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice sampling helpers (`shuffle`, `choose_multiple`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements, in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: only the first `amount` slots matter.
            for i in 0..amount {
                let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let x = rng.gen_range(5i64..8);
            assert!((5..8).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let picked: Vec<i32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let distinct: std::collections::HashSet<i32> = picked.iter().copied().collect();
        assert_eq!(distinct.len(), 10);
    }
}
