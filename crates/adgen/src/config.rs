//! Generator configuration, with defaults mirroring the paper's evaluation
//! setting (scaled to laptop size).

use serde::{Deserialize, Serialize};

/// Ticks per second (the workload convention; see `temporal::time`).
pub const SEC: i64 = 1;
/// Ticks per minute.
pub const MIN: i64 = 60 * SEC;
/// Ticks per hour.
pub const HOUR: i64 = 60 * MIN;
/// Ticks per day.
pub const DAY: i64 = 24 * HOUR;

/// One ad class with planted keyword correlations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdClassSpec {
    /// Ad class name (the `KwAdId` of its impressions/clicks).
    pub name: String,
    /// Log-odds bias of a click with an empty profile. The paper notes
    /// overall CTR is "typically lower than 1%"; the default −4.6 gives
    /// a base CTR of ≈1%.
    pub bias: f64,
    /// `(keyword, log-odds weight)` — positive weights raise click
    /// probability when the keyword is in the user's recent history.
    pub positive: Vec<(String, f64)>,
    /// `(keyword, log-odds weight)` — magnitudes subtracted when present.
    pub negative: Vec<(String, f64)>,
}

impl AdClassSpec {
    /// Convenience constructor: uniform weights.
    pub fn new(name: &str, positive: &[&str], negative: &[&str]) -> Self {
        AdClassSpec {
            name: name.to_string(),
            bias: -4.6,
            positive: positive.iter().map(|k| (k.to_string(), 2.2)).collect(),
            negative: negative.iter().map(|k| (k.to_string(), -2.2)).collect(),
        }
    }
}

/// A time-localized search burst (Example 2's icarly premiere).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendSpec {
    /// The trending keyword.
    pub keyword: String,
    /// Burst interval start (ticks).
    pub start: i64,
    /// Burst interval end (ticks).
    pub end: i64,
    /// Fraction of users participating in the trend.
    pub user_fraction: f64,
    /// Extra searches of the keyword per participating user per hour
    /// during the burst.
    pub searches_per_hour: f64,
}

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenConfig {
    /// RNG seed; identical seeds give identical logs.
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Fraction of users that are bots (paper: ~0.5%).
    pub bot_fraction: f64,
    /// Activity multiplier for bots (they produce this many times the
    /// searches and clicks of an ordinary user; paper: 0.5% of users make
    /// 13% of clicks+searches ⇒ ~29×).
    pub bot_activity_multiplier: f64,
    /// Size of the background keyword vocabulary (excludes planted
    /// keywords).
    pub background_keywords: usize,
    /// Zipf exponent for background keyword popularity.
    pub zipf_exponent: f64,
    /// Log length in ticks.
    pub duration: i64,
    /// Mean searches+pageviews per user per day.
    pub searches_per_user_per_day: f64,
    /// Mean ad impressions per user per day.
    pub impressions_per_user_per_day: f64,
    /// Extra planted-keyword search rate for affine users, as a fraction
    /// of the background search rate (an additional Poisson process on
    /// top of the background searches every user performs).
    pub planted_search_weight: f64,
    /// Fraction of users affine to each ad class's positive keywords.
    pub affinity_fraction: f64,
    /// Delay from impression to click, max (ticks). The paper uses a 5-min
    /// click window (Fig 12's d).
    pub max_click_delay: i64,
    /// Ad classes.
    pub ad_classes: Vec<AdClassSpec>,
    /// Trend spikes.
    pub trends: Vec<TrendSpec>,
}

impl GenConfig {
    /// The paper-shaped default: the five ad classes used in §V with their
    /// Figs 17–19 keyword tables planted, one week of data, one trend
    /// spike (icarly).
    pub fn paper_default(seed: u64, users: usize) -> Self {
        let ad_classes = vec![
            AdClassSpec::new(
                "deodorant",
                &[
                    "celebrity",
                    "icarly",
                    "tattoo",
                    "games",
                    "chat",
                    "videos",
                    "hannah",
                    "exam",
                    "music",
                ],
                &[
                    "verizon",
                    "construct",
                    "service",
                    "ford",
                    "hotels",
                    "jobless",
                    "pilot",
                    "credit",
                    "craigslist",
                ],
            ),
            AdClassSpec::new(
                "laptop",
                &[
                    "dell",
                    "laptops",
                    "computers",
                    "juris",
                    "toshiba",
                    "vostro",
                    "hp",
                ],
                &[
                    "pregnant", "stars", "wang", "vera", "dancing", "myspace", "facebook",
                ],
            ),
            AdClassSpec::new(
                "cellphone",
                &[
                    "blackberry",
                    "curve",
                    "enable",
                    "tmobile",
                    "phones",
                    "wireless",
                    "att",
                    "verizon",
                ],
                &[
                    "recipes", "times", "national", "hotels", "people", "baseball", "porn",
                    "myspace",
                ],
            ),
            AdClassSpec::new(
                "movies",
                &[
                    "trailer",
                    "imdb",
                    "tickets",
                    "showtimes",
                    "actors",
                    "cinema",
                ],
                &["gardening", "mortgage", "tax", "plumber"],
            ),
            AdClassSpec::new(
                "dieting",
                &[
                    "calories",
                    "weightloss",
                    "fitness",
                    "recipes",
                    "yoga",
                    "lowcarb",
                ],
                &["pizza", "beer", "casino", "cigarettes"],
            ),
        ];
        GenConfig {
            seed,
            users,
            bot_fraction: 0.005,
            bot_activity_multiplier: 29.0,
            background_keywords: 2_000,
            zipf_exponent: 1.07,
            duration: 7 * DAY,
            searches_per_user_per_day: 12.0,
            impressions_per_user_per_day: 6.0,
            planted_search_weight: 0.35,
            affinity_fraction: 0.25,
            max_click_delay: 4 * MIN,
            ad_classes,
            trends: vec![TrendSpec {
                keyword: "icarly".into(),
                start: 2 * DAY,
                end: 2 * DAY + 6 * HOUR,
                user_fraction: 0.1,
                searches_per_hour: 1.5,
            }],
        }
    }

    /// A small configuration for unit and integration tests: shorter,
    /// denser, and more strongly affine than the week-long default so the
    /// planted signal reaches z-test support within one day of data.
    pub fn small(seed: u64) -> Self {
        let mut cfg = Self::paper_default(seed, 400);
        cfg.duration = DAY;
        cfg.background_keywords = 200;
        cfg.searches_per_user_per_day = 24.0;
        cfg.impressions_per_user_per_day = 12.0;
        cfg.affinity_fraction = 0.35;
        cfg.planted_search_weight = 0.5;
        // Keep the trend burst inside the shortened log.
        for t in &mut cfg.trends {
            t.start = 6 * HOUR;
            t.end = 12 * HOUR;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_five_ad_classes() {
        let cfg = GenConfig::paper_default(1, 1000);
        assert_eq!(cfg.ad_classes.len(), 5);
        let names: Vec<&str> = cfg.ad_classes.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["deodorant", "laptop", "cellphone", "movies", "dieting"]
        );
        // Fig 17's signature keywords are planted.
        let deo = &cfg.ad_classes[0];
        assert!(deo.positive.iter().any(|(k, _)| k == "icarly"));
        assert!(deo.negative.iter().any(|(k, _)| k == "jobless"));
    }

    #[test]
    fn config_serializes() {
        let cfg = GenConfig::small(7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GenConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.users, cfg.users);
        assert_eq!(back.ad_classes.len(), cfg.ad_classes.len());
    }
}
