//! Keyword vocabulary with Zipf-distributed popularity.
//!
//! Real search logs are heavy-tailed: the paper reports ~50 M distinct
//! keywords of which only a tiny fraction carry BT signal, which is why
//! popularity-based selection (KE-pop) retains junk like "facebook" and
//! "craigslist" (§V-C). A Zipf background vocabulary reproduces that trap:
//! the most popular keywords carry no click signal at all.

use rand::Rng;

/// A sampler over `n` ranked items with probability ∝ `1 / rank^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty Zipf support");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank index in `[0, n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// The full vocabulary: planted keywords (from ad-class specs) followed by
/// background keywords `bg0, bg1, …` in popularity-rank order.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    /// All keywords; planted first.
    pub keywords: Vec<String>,
    /// Number of planted keywords at the front.
    pub planted: usize,
    zipf: Zipf,
}

impl Vocabulary {
    /// Build from the planted set plus `background` generic keywords.
    pub fn new(planted: Vec<String>, background: usize, zipf_exponent: f64) -> Self {
        let mut keywords = planted;
        let planted_count = keywords.len();
        keywords.extend((0..background).map(|i| format!("bg{i}")));
        // Background popularity ranks only: planted keywords are sampled
        // via affinity, not popularity.
        Vocabulary {
            planted: planted_count,
            zipf: Zipf::new(background.max(1), zipf_exponent),
            keywords,
        }
    }

    /// Sample a background keyword by popularity.
    pub fn sample_background<R: Rng>(&self, rng: &mut R) -> &str {
        let rank = self.zipf.sample(rng);
        &self.keywords[self.planted + rank.min(self.keywords.len() - self.planted - 1)]
    }

    /// All planted keywords.
    pub fn planted_keywords(&self) -> &[String] {
        &self.keywords[..self.planted]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_heavy_headed() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top-10 of 1000 items should draw a large share.
        assert!(head as f64 / n as f64 > 0.3, "head share {head}/{n}");
    }

    #[test]
    fn zipf_samples_cover_support() {
        let z = Zipf::new(5, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vocabulary_layout() {
        let v = Vocabulary::new(vec!["icarly".into(), "dell".into()], 100, 1.0);
        assert_eq!(
            v.planted_keywords(),
            &["icarly".to_string(), "dell".to_string()]
        );
        assert_eq!(v.keywords.len(), 102);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let k = v.sample_background(&mut rng);
            assert!(k.starts_with("bg"), "background sample was {k}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
