//! Behavioral Targeting built from temporal queries on TiMR (paper §IV).
//!
//! The end-to-end BT solution of the paper, expressed as a handful of
//! succinct temporal CQs compiled to map-reduce by TiMR:
//!
//! 1. **Bot elimination** ([`queries::bot_elim`], Fig 11) — users whose
//!    clicks or searches in a 6-hour window exceed thresholds are flagged
//!    every 15 minutes; their activity is removed with an AntiSemiJoin.
//! 2. **Training-data generation** ([`queries::train_data`], Fig 12) —
//!    non-clicks are impressions not followed by a click within `d`
//!    (AntiSemiJoin against back-extended clicks); user behavior profiles
//!    are per-`(user, keyword)` 6-hour sliding counts; a TemporalJoin
//!    attaches each click/non-click to the profile *as of that instant*.
//! 3. **Feature selection** ([`queries::feature_selection`], Fig 13) —
//!    the unpooled two-proportion z-test ([`ztest`]) scores every
//!    `(ad, keyword)` pair; thresholding |z| keeps keywords genuinely
//!    correlated (positively or negatively) with clicks.
//! 4. **Model building and scoring** ([`queries::model`], §IV-B.4) —
//!    sparse logistic regression ([`lr`]) retrained over a hopping window
//!    by a UDO, with the current model lodged in a join synopsis for
//!    scoring.
//!
//! [`pipeline`] orchestrates the jobs over a DFS; [`eval`] implements the
//! paper's evaluation methodology (CTR lift vs. coverage, keyword-set
//! lift, memory/learning-time accounting); [`baselines`] provides the
//! comparison schemes (KE-pop, F-Ex, and the hand-written "custom
//! reducer" pipeline of Fig 14).

pub mod baselines;
pub mod error;
pub mod eval;
pub mod example;
pub mod lr;
pub mod params;
pub mod pipeline;
pub mod queries;
pub mod ztest;

pub use error::{BtError, Result};
pub use example::{Example, FeatureVector};
pub use params::BtParams;
