//! Error type for the map-reduce runtime.

use relation::RelationError;
use std::fmt;

/// Errors raised by the map-reduce runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum MrError {
    /// A named dataset was not found in the DFS.
    NoSuchDataset(String),
    /// A dataset with this name already exists.
    DatasetExists(String),
    /// A stage was misconfigured (bad partitioner columns, arity…).
    BadStage(String),
    /// A reducer failed.
    Reducer {
        /// Stage name.
        stage: String,
        /// Partition index.
        partition: usize,
        /// Failure description.
        message: String,
    },
    /// Propagated relational-layer error.
    Relation(RelationError),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::NoSuchDataset(n) => write!(f, "no such dataset `{n}`"),
            MrError::DatasetExists(n) => write!(f, "dataset `{n}` already exists"),
            MrError::BadStage(m) => write!(f, "bad stage: {m}"),
            MrError::Reducer {
                stage,
                partition,
                message,
            } => write!(
                f,
                "reducer failed in `{stage}` partition {partition}: {message}"
            ),
            MrError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for MrError {
    fn from(e: RelationError) -> Self {
        MrError::Relation(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MrError>;
