//! Cross-crate integration: the full BT story on generated data.
//!
//! These tests exercise the complete dependency chain — generator → DFS →
//! TiMR jobs (temporal queries on map-reduce) → evaluation — and assert
//! the *scientific* outcomes the paper claims: planted keyword recovery,
//! positive CTR lift for KE-z, KE-z beating KE-pop, bot removal, and
//! agreement between the declarative and hand-written pipelines.

use timr_suite::adgen::{generate, GenConfig};
use timr_suite::bt::eval::{
    by_ad, keyword_set_lift, lift_coverage, scores_from_examples, split_by_time, train_models,
    Scheme,
};
use timr_suite::bt::lr::LrConfig;
use timr_suite::bt::pipeline::BtPipeline;
use timr_suite::bt::BtParams;
use timr_suite::mapreduce::{Cluster, Dataset, Dfs};

struct Setup {
    dfs: Dfs,
    params: BtParams,
    log: timr_suite::adgen::GeneratedLog,
    artifacts: timr_suite::bt::pipeline::PipelineArtifacts,
    duration: i64,
}

fn setup(seed: u64, users: usize) -> Setup {
    let mut cfg = GenConfig::small(seed);
    cfg.users = users;
    let log = generate(&cfg);
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(timr_suite::adgen::unified_schema(), log.rows()),
    )
    .unwrap();
    let params = BtParams {
        machines: 4,
        horizon: cfg.duration * 2,
        ..Default::default()
    };
    let artifacts = BtPipeline::new(params.clone())
        .run(&dfs, &Cluster::new(), "logs", "it")
        .unwrap();
    Setup {
        dfs,
        params,
        log,
        artifacts,
        duration: cfg.duration,
    }
}

#[test]
fn end_to_end_recovers_planted_structure_and_lifts_ctr() {
    let s = setup(101, 900);

    // 1. Keyword recovery: for every ad class, the strongest positive
    //    z-scores are dominated by planted positives.
    let scores = BtPipeline::load_scores(&s.dfs, &s.artifacts.scores).unwrap();
    let mut checked_ads = 0;
    for (ad, planted) in &s.log.truth.positive_keywords {
        let mut top: Vec<_> = scores
            .iter()
            .filter(|sc| &sc.ad == ad && sc.z > 1.96)
            .collect();
        top.sort_by(|a, b| b.z.total_cmp(&a.z));
        if top.len() < 3 {
            continue; // sparse ad at this scale
        }
        let hits = top
            .iter()
            .take(5)
            .filter(|sc| planted.contains(&sc.keyword))
            .count();
        assert!(
            hits * 3 >= top.len().min(5) * 2,
            "{ad}: planted keywords should dominate top z-scores ({hits} hits)"
        );
        checked_ads += 1;
    }
    assert!(checked_ads >= 3, "most ad classes reach significance");

    // 2. CTR lift: train on the first half, evaluate on the second; KE-z
    //    must produce positive lift at 10% coverage for at least one ad,
    //    and on average beat KE-pop.
    let examples =
        BtPipeline::load_examples(&s.dfs, &s.artifacts.labels, &s.artifacts.train_rows).unwrap();
    let (train, test) = split_by_time(&examples, s.duration / 2);
    let train_scores =
        scores_from_examples(&train, s.params.min_support, s.params.min_example_support);
    let train_by_ad = by_ad(&train);
    let test_by_ad = by_ad(&test);

    let mut kez_lift_sum = 0.0;
    let mut kepop_lift_sum = 0.0;
    let mut ads = 0.0;
    for scheme_pair in [(Scheme::KeZ { threshold: 1.28 }, Scheme::KePop { n: 30 })] {
        let kez_models = train_models(
            &train_by_ad,
            &scheme_pair.0,
            &train_scores,
            &LrConfig::default(),
        );
        let kepop_models = train_models(
            &train_by_ad,
            &scheme_pair.1,
            &train_scores,
            &LrConfig::default(),
        );
        for (ad, test_examples) in &test_by_ad {
            let (Some(a), Some(b)) = (kez_models.get(ad), kepop_models.get(ad)) else {
                continue;
            };
            if test_examples.len() < 100 {
                continue;
            }
            let ka = lift_coverage(ad, a, test_examples, &scheme_pair.0, &train_scores, &[0.1]);
            let kb = lift_coverage(ad, b, test_examples, &scheme_pair.1, &train_scores, &[0.1]);
            kez_lift_sum += ka[0].lift;
            kepop_lift_sum += kb[0].lift;
            ads += 1.0;
        }
    }
    assert!(ads >= 3.0, "enough ads evaluated: {ads}");
    assert!(
        kez_lift_sum / ads > 0.0,
        "KE-z mean lift must be positive: {}",
        kez_lift_sum / ads
    );
    assert!(
        kez_lift_sum > kepop_lift_sum,
        "KE-z ({kez_lift_sum:.3}) should beat KE-pop ({kepop_lift_sum:.3}) in total lift"
    );
}

#[test]
fn keyword_subsets_shift_ctr_in_the_planted_direction() {
    let s = setup(202, 900);
    let examples =
        BtPipeline::load_examples(&s.dfs, &s.artifacts.labels, &s.artifacts.train_rows).unwrap();
    let (train, test) = split_by_time(&examples, s.duration / 2);
    let scores = scores_from_examples(&train, s.params.min_support, s.params.min_example_support);
    let test_by_ad = by_ad(&test);

    let mut positive_lifts = 0;
    let mut checked = 0;
    for (ad, test_examples) in &test_by_ad {
        let pos: rustc_hash::FxHashSet<String> = scores
            .iter()
            .filter(|sc| &sc.ad == ad && sc.z > 1.28)
            .map(|sc| sc.keyword.clone())
            .collect();
        let neg: rustc_hash::FxHashSet<String> = scores
            .iter()
            .filter(|sc| &sc.ad == ad && sc.z < -1.28)
            .map(|sc| sc.keyword.clone())
            .collect();
        if pos.is_empty() || test_examples.len() < 200 {
            continue;
        }
        let rows = keyword_set_lift(test_examples, &pos, &neg);
        // rows[1] = ">=1 pos kw".
        if rows[1].examples > 30 {
            checked += 1;
            if rows[1].lift_pct > 0.0 {
                positive_lifts += 1;
            }
        }
    }
    assert!(checked >= 3, "checked {checked} ads");
    assert!(
        positive_lifts * 4 >= checked * 3,
        "positive-keyword subsets lift CTR for most ads: {positive_lifts}/{checked}"
    );
}

#[test]
fn bot_elimination_removes_planted_bots_activity() {
    let s = setup(303, 1000);
    let clean = s.dfs.get(&s.artifacts.clean).unwrap();
    // Clean dataset is Interval-encoded: (Time, TimeEnd, StreamId,
    // UserId, KwAdId) — UserId is column 3.
    let clean_users: rustc_hash::FxHashMap<String, u64> = {
        let mut m: rustc_hash::FxHashMap<String, u64> = Default::default();
        for r in clean.scan() {
            *m.entry(r.get(3).as_str().unwrap().to_string()).or_insert(0) += 1;
        }
        m
    };
    let raw_users: rustc_hash::FxHashMap<String, u64> = {
        let mut m: rustc_hash::FxHashMap<String, u64> = Default::default();
        for e in &s.log.events {
            *m.entry(e.user.clone()).or_insert(0) += 1;
        }
        m
    };
    // Every planted bot loses the majority of its activity; ordinary
    // users keep essentially all of theirs.
    let mut bots_suppressed = 0;
    for bot in &s.log.truth.bots {
        let raw = raw_users.get(bot).copied().unwrap_or(0);
        let kept = clean_users.get(bot).copied().unwrap_or(0);
        if raw >= 20 && (kept as f64) < 0.5 * raw as f64 {
            bots_suppressed += 1;
        }
    }
    assert!(
        bots_suppressed as f64 >= 0.8 * s.log.truth.bots.len() as f64,
        "{bots_suppressed}/{} bots suppressed",
        s.log.truth.bots.len()
    );

    let sample_normals: Vec<&String> = raw_users
        .keys()
        .filter(|u| !s.log.truth.bots.contains(*u))
        .take(50)
        .collect();
    for u in sample_normals {
        let raw = raw_users[u];
        let kept = clean_users.get(u).copied().unwrap_or(0);
        assert!(
            kept as f64 >= 0.9 * raw as f64,
            "normal user {u} lost activity: {kept}/{raw}"
        );
    }
}

#[test]
fn declarative_and_custom_pipelines_agree_at_scale() {
    let s = setup(404, 700);
    timr_suite::bt::baselines::custom::run_custom(
        &s.dfs,
        &Cluster::new(),
        "logs",
        "cust",
        &s.params,
    )
    .unwrap();
    let timr_scores = BtPipeline::load_scores(&s.dfs, &s.artifacts.scores).unwrap();
    let custom_scores = BtPipeline::load_custom_scores(&s.dfs, "cust_scores").unwrap();
    assert!(!timr_scores.is_empty());

    let custom_map: std::collections::BTreeMap<(String, String), f64> = custom_scores
        .iter()
        .map(|sc| ((sc.ad.clone(), sc.keyword.clone()), sc.z))
        .collect();
    let mut matched = 0;
    for sc in &timr_scores {
        if let Some(z) = custom_map.get(&(sc.ad.clone(), sc.keyword.clone())) {
            assert!(
                (sc.z - z).abs() < 1e-9,
                "z mismatch {}/{}: {} vs {z}",
                sc.ad,
                sc.keyword,
                sc.z
            );
            matched += 1;
        }
    }
    assert!(
        matched as f64 >= 0.9 * timr_scores.len() as f64,
        "{matched}/{} scores matched",
        timr_scores.len()
    );
}
