//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --release --bin experiments                # all, small scale
//! cargo run -p bench --release --bin experiments -- fig16      # one experiment
//! cargo run -p bench --release --bin experiments -- --scale paper
//! cargo run -p bench --release --bin experiments -- --list
//! ```

use bench::experiments::{registry, Ctx};
use bench::Scale;

fn main() {
    let mut scale = Scale::Small;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (small|paper)");
                    std::process::exit(2);
                });
            }
            "--list" => {
                for e in registry() {
                    println!("{:8} {}", e.name, e.artifact);
                }
                return;
            }
            name => selected.push(name.to_string()),
        }
    }

    let experiments = registry();
    for name in &selected {
        if !experiments.iter().any(|e| e.name == name) {
            eprintln!("unknown experiment `{name}`; use --list");
            std::process::exit(2);
        }
    }

    println!(
        "TiMR reproduction experiments — scale: {scale:?} (see EXPERIMENTS.md for analysis)\n"
    );
    let t0 = std::time::Instant::now();
    let mut ctx = Ctx::new(scale, 42);
    println!(
        "workload: {} log events, {} users configured\n",
        ctx.workload.log.events.len(),
        scale.gen_config(42).users,
    );

    for e in experiments {
        if !selected.is_empty() && !selected.iter().any(|n| n == e.name) {
            continue;
        }
        println!("=== [{}] {} ===", e.name, e.artifact);
        let start = std::time::Instant::now();
        let report = (e.run)(&mut ctx);
        println!("{report}");
        println!("[{} completed in {:.2?}]\n", e.name, start.elapsed());
    }
    println!("all done in {:.2?}", t0.elapsed());
}
