//! Stage execution on a local thread pool, with failure injection.

use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result};
use crate::job::{ReducerContext, Stage};
use crate::stats::{JobStats, StageStats};
use parking_lot::Mutex;
use relation::Row;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which task attempts should be killed, to exercise the restart path
/// (paper §III-C.1: "TiMR works well with M-R's failure handling strategy
/// of restarting failed reducers").
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(stage name, partition)` pairs whose **first** attempt fails.
    pub kill_first_attempt: Vec<(String, usize)>,
}

impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Fail the first attempt of `partition` in `stage`.
    pub fn kill(mut self, stage: impl Into<String>, partition: usize) -> Self {
        self.kill_first_attempt.push((stage.into(), partition));
        self
    }

    fn should_fail(&self, stage: &str, partition: usize, attempt: usize) -> bool {
        attempt == 0
            && self
                .kill_first_attempt
                .iter()
                .any(|(s, p)| s == stage && *p == partition)
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Local worker threads executing reduce tasks.
    pub threads: usize,
    /// Injected failures.
    pub failures: FailurePlan,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            failures: FailurePlan::none(),
            max_attempts: 3,
        }
    }
}

/// The execution engine: runs stages against a [`Dfs`].
#[derive(Debug, Default)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Cluster with default configuration.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Cluster with explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Self {
        Cluster { config }
    }

    /// Run one stage: map (partition) each input dataset, then reduce each
    /// partition on the thread pool, writing the output dataset to the DFS.
    pub fn run_stage(&self, dfs: &Dfs, stage: &Stage) -> Result<StageStats> {
        let wall_start = Instant::now();
        let inputs: Vec<Dataset> = stage
            .inputs
            .iter()
            .map(|n| dfs.get(n))
            .collect::<Result<Vec<_>>>()?;

        // ---- map / shuffle ----
        let mut map_rows = 0u64;
        let mut shuffle_bytes = 0u64;
        // buckets[input][partition] -> rows, preserving scan order so the
        // shuffle is deterministic.
        let mut buckets: Vec<Vec<Vec<Row>>> = inputs
            .iter()
            .map(|_| (0..stage.partitions).map(|_| Vec::new()).collect())
            .collect();
        for (i, input) in inputs.iter().enumerate() {
            for row in input.scan() {
                map_rows += 1;
                shuffle_bytes += row.width() as u64;
                let p = stage.partitioner.assign(&input.schema, &row, stage.partitions)?;
                buckets[i][p].push(row);
            }
        }

        // ---- reduce ----
        // Move each partition's inputs into a slot the workers pull from.
        let mut tasks: Vec<Option<Vec<Vec<Row>>>> = (0..stage.partitions)
            .map(|p| {
                Some(
                    buckets
                        .iter_mut()
                        .map(|per_input| std::mem::take(&mut per_input[p]))
                        .collect(),
                )
            })
            .collect();
        let task_slots: Vec<Mutex<Option<Vec<Vec<Row>>>>> =
            tasks.drain(..).map(Mutex::new).collect();
        type TaskResult = Result<(Vec<Row>, Duration, u64)>;
        let results: Vec<Mutex<Option<TaskResult>>> =
            (0..stage.partitions).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        let run_task = |partition: usize, input_rows: &Vec<Vec<Row>>| {
            let mut attempt = 0;
            loop {
                let ctx = ReducerContext {
                    stage: stage.name.clone(),
                    partition,
                    partitions: stage.partitions,
                    attempt,
                };
                if self.config.failures.should_fail(&stage.name, partition, attempt) {
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return Err(MrError::Reducer {
                            stage: stage.name.clone(),
                            partition,
                            message: "exceeded max attempts".into(),
                        });
                    }
                    continue;
                }
                let start = Instant::now();
                let out = stage.reducer.reduce(&ctx, input_rows.clone())?;
                return Ok((out, start.elapsed(), attempt as u64));
            }
        };

        let threads = self.config.threads.max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(stage.partitions) {
                scope.spawn(|| loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= stage.partitions {
                        break;
                    }
                    let input_rows = task_slots[p]
                        .lock()
                        .take()
                        .expect("task taken twice");
                    let result = run_task(p, &input_rows);
                    *results[p].lock() = Some(result);
                });
            }
        });

        // ---- collect ----
        let mut partitions_out: Vec<Vec<Row>> = Vec::with_capacity(stage.partitions);
        let mut partition_times = Vec::with_capacity(stage.partitions);
        let mut output_rows = 0u64;
        let mut task_retries = 0u64;
        for slot in results {
            let (rows, took, retries) = slot
                .into_inner()
                .expect("worker pool left a task unexecuted")?;
            output_rows += rows.len() as u64;
            task_retries += retries;
            partition_times.push(took);
            partitions_out.push(rows);
        }

        let out_schema = stage
            .reducer
            .output_schema(&inputs.iter().map(|d| d.schema.clone()).collect::<Vec<_>>())?;
        dfs.put_overwrite(&stage.output, Dataset::partitioned(out_schema, partitions_out));

        Ok(StageStats {
            name: stage.name.clone(),
            map_rows,
            shuffle_bytes,
            output_rows,
            partitions: stage.partitions,
            partition_times,
            wall_time: wall_start.elapsed(),
            task_retries,
        })
    }

    /// Run stages in order, returning accumulated statistics.
    pub fn run_job(&self, dfs: &Dfs, stages: &[Stage]) -> Result<JobStats> {
        let mut stats = JobStats::default();
        for stage in stages {
            stats.stages.push(self.run_stage(dfs, stage)?);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{IdentityReducer, Partitioner, Reducer, ReducerRef};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("UserId", ColumnType::Str)])
    }

    fn input_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, format!("u{}", i % 7)])
            .collect()
    }

    fn dfs_with_input(n: usize) -> Dfs {
        let dfs = Dfs::new();
        dfs.put("in", Dataset::single(schema(), input_rows(n))).unwrap();
        dfs
    }

    /// Counts rows per partition — sensitive to partitioning, so restart
    /// determinism is observable.
    #[derive(Debug)]
    struct CountReducer;

    impl Reducer for CountReducer {
        fn output_schema(&self, _inputs: &[Schema]) -> Result<Schema> {
            Ok(Schema::new(vec![
                Field::new("Partition", ColumnType::Long),
                Field::new("N", ColumnType::Long),
            ]))
        }

        fn reduce(&self, ctx: &ReducerContext, inputs: Vec<Vec<Row>>) -> Result<Vec<Row>> {
            let n: usize = inputs.iter().map(Vec::len).sum();
            Ok(vec![row![ctx.partition as i64, n as i64]])
        }
    }

    fn count_stage(partitions: usize) -> Stage {
        Stage::new(
            "count",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            partitions,
            Arc::new(CountReducer),
        )
        .unwrap()
    }

    #[test]
    fn rows_with_same_key_land_in_same_partition() {
        let dfs = dfs_with_input(100);
        let cluster = Cluster::new();
        let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
        assert_eq!(stats.map_rows, 100);
        let out = dfs.get("out").unwrap();
        let total: i64 = out
            .scan()
            .iter()
            .map(|r| r.get(1).as_long().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn identity_stage_preserves_all_rows() {
        let dfs = dfs_with_input(50);
        let r: ReducerRef = Arc::new(IdentityReducer);
        let stage = Stage::new(
            "id",
            vec!["in".into()],
            "copy",
            Partitioner::Spread,
            8,
            r,
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        let mut original = dfs.get("in").unwrap().scan();
        let mut copied = dfs.get("copy").unwrap().scan();
        original.sort();
        copied.sort();
        assert_eq!(original, copied);
    }

    #[test]
    fn output_is_identical_with_and_without_injected_failures() {
        let run = |failures: FailurePlan| {
            let dfs = dfs_with_input(100);
            let cluster = Cluster::with_config(ClusterConfig {
                threads: 4,
                failures,
                max_attempts: 3,
            });
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
        };
        let (clean, s1) = run(FailurePlan::none());
        let (with_failures, s2) = run(FailurePlan::none().kill("count", 1).kill("count", 3));
        assert_eq!(clean, with_failures, "restart must be deterministic");
        assert_eq!(s1.task_retries, 0);
        assert_eq!(s2.task_retries, 2);
    }

    #[test]
    fn job_fails_after_max_attempts() {
        let dfs = dfs_with_input(10);
        let cluster = Cluster::with_config(ClusterConfig {
            threads: 1,
            failures: FailurePlan {
                kill_first_attempt: vec![("count".into(), 0)],
            },
            max_attempts: 1,
        });
        assert!(matches!(
            cluster.run_stage(&dfs, &count_stage(2)),
            Err(MrError::Reducer { .. })
        ));
    }

    #[test]
    fn multi_input_stage_delivers_per_input_rows() {
        #[derive(Debug)]
        struct AritiesReducer;
        impl Reducer for AritiesReducer {
            fn output_schema(&self, _: &[Schema]) -> Result<Schema> {
                Ok(Schema::new(vec![
                    Field::new("A", ColumnType::Long),
                    Field::new("B", ColumnType::Long),
                ]))
            }
            fn reduce(&self, _: &ReducerContext, inputs: Vec<Vec<Row>>) -> Result<Vec<Row>> {
                Ok(vec![row![inputs[0].len() as i64, inputs[1].len() as i64]])
            }
        }
        let dfs = Dfs::new();
        dfs.put("a", Dataset::single(schema(), input_rows(5))).unwrap();
        dfs.put("b", Dataset::single(schema(), input_rows(9))).unwrap();
        let stage = Stage::new(
            "two",
            vec!["a".into(), "b".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(AritiesReducer),
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        assert_eq!(dfs.get("out").unwrap().scan(), vec![row![5i64, 9i64]]);
    }

    #[test]
    fn run_job_chains_stages() {
        let dfs = dfs_with_input(20);
        let id: ReducerRef = Arc::new(IdentityReducer);
        let stages = vec![
            Stage::new(
                "s1",
                vec!["in".into()],
                "mid",
                Partitioner::KeyHash {
                    columns: vec!["UserId".into()],
                },
                4,
                id.clone(),
            )
            .unwrap(),
            Stage::new("s2", vec!["mid".into()], "final", Partitioner::Single, 1, id).unwrap(),
        ];
        let stats = Cluster::new().run_job(&dfs, &stages).unwrap();
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(dfs.get("final").unwrap().len(), 20);
        assert!(stats.total_shuffle_bytes() > 0);
    }
}
