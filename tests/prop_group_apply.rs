//! Property tests for parallel GroupApply: fanning groups out on the
//! worker pool must be invisible in the output. For any plan, key set and
//! event bag — including distinct keys engineered to share an FxHash
//! value, and groups whose sub-plan output is empty — the event vector at
//! 2+ threads must be **byte-identical** (`events() ==`, not just the
//! same relation) to the sequential run. This is the repeatability
//! guarantee restarted reducers compare bytes against (paper §III-C.1).

use proptest::prelude::*;
use timr_suite::relation::hash::values_hash;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Schema, Value};
use timr_suite::temporal::agg::AggExpr;
use timr_suite::temporal::exec::{bindings, execute_single_with_options, ExecOptions};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::plan::LogicalPlan;
use timr_suite::temporal::{Event, EventStream, Query};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("A", ColumnType::Long),
        Field::new("B", ColumnType::Long),
        Field::new("V", ColumnType::Long),
    ])
}

/// One Fx round: `state = (state <<< 5 ^ word) * SEED`.
fn fx_add(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Hash state after absorbing `[rank(Long), a, rank(Long)]` — everything
/// the key hash of `[Long(a), Long(b)]` mixes in before `b` itself.
fn prefix_state(a: i64) -> u64 {
    fx_add(fx_add(fx_add(0, 3), a as u64), 3)
}

/// Given the key `[Long(a1), Long(b1)]` and a different first column
/// `a2`, solve for the `b2` that makes `[Long(a2), Long(b2)]` collide on
/// the full 64-bit key hash. The final Fx round multiplies by an odd
/// (invertible) constant, so equal hashes reduce to equal pre-multiply
/// words: `rotl5(u1) ^ b1 = rotl5(u2) ^ b2`.
fn colliding_partner(a1: i64, b1: i64, a2: i64) -> i64 {
    (b1 as u64 ^ prefix_state(a1).rotate_left(5) ^ prefix_state(a2).rotate_left(5)) as i64
}

/// Key-pair palette: a few small `(a, b)` keys, each paired with a
/// distinct partner key constructed to share its 64-bit FxHash — so
/// random event bags routinely exercise the hash-then-compare collision
/// path in GroupApply's partitioner.
fn palette() -> Vec<(i64, i64)> {
    let mut pairs = Vec::new();
    for a in 0..3i64 {
        for b in 0..2i64 {
            let pa = a + 101;
            pairs.push((a, b));
            pairs.push((pa, colliding_partner(a, b, pa)));
        }
    }
    pairs
}

#[test]
fn palette_pairs_really_collide() {
    for chunk in palette().chunks(2) {
        let [(a1, b1), (a2, b2)] = chunk else {
            panic!("palette comes in pairs")
        };
        assert_ne!((a1, b1), (a2, b2));
        assert_eq!(
            values_hash(&[Value::Long(*a1), Value::Long(*b1)]),
            values_hash(&[Value::Long(*a2), Value::Long(*b2)]),
            "constructed partner must share the key hash"
        );
    }
}

/// A random GroupApply plan: 1- or 2-column key, one of three sub-plan
/// shapes (the filtered variant can leave groups with zero output).
fn build_plan(key_cols: usize, plan_kind: usize, w: i64) -> LogicalPlan {
    let keys: &[&str] = if key_cols == 1 { &["A"] } else { &["A", "B"] };
    let q = Query::new();
    let src = q.source("in", payload());
    let out = match plan_kind {
        0 => src.group_apply(keys, |g| g.window(w).count("N")),
        1 => src.group_apply(keys, |g| {
            g.aggregate(vec![
                ("S".into(), AggExpr::Sum(col("V"))),
                ("C".into(), AggExpr::Count),
            ])
        }),
        _ => src.group_apply(keys, |g| {
            // Groups where no event passes the filter produce no output.
            g.filter(col("V").ge(lit(25i64))).window(w).count("N")
        }),
    };
    q.build(vec![out]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel GroupApply at 2+ threads is byte-identical to the
    /// sequential run, for random plans, key widths and event bags —
    /// `0..` lengths include the empty input.
    #[test]
    fn parallel_group_apply_is_byte_identical(
        events in prop::collection::vec((0i64..400, 0usize..64, 0i64..40), 0..80),
        key_cols in 1usize..3,
        plan_kind in 0usize..3,
        w in 1i64..50,
    ) {
        let palette = palette();
        let stream = EventStream::new(
            payload(),
            events
                .iter()
                .map(|&(t, pi, v)| {
                    let (a, b) = palette[pi % palette.len()];
                    Event::point(t, row![a, b, v])
                })
                .collect(),
        );
        let plan = build_plan(key_cols, plan_kind, w);
        let srcs = bindings(vec![("in", stream)]);
        let sequential =
            execute_single_with_options(&plan, &srcs, &ExecOptions::default().threads(1)).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel =
                execute_single_with_options(&plan, &srcs, &ExecOptions::default().threads(threads))
                    .unwrap();
            prop_assert_eq!(
                sequential.events(),
                parallel.events(),
                "threads={} changed the output", threads
            );
        }
    }
}
