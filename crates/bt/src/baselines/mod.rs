//! Comparison schemes for the evaluation (paper §V-C/D).

pub mod custom;
pub mod f_ex;
pub mod ke_pop;
