//! Synthetic advertising-log generator with planted ground truth.
//!
//! The paper evaluates on a week of proprietary logs (250 M users, 50 M
//! keywords, several TB). We cannot ship those, so this crate generates
//! logs in the same unified schema (paper Fig 9) with *known* structure
//! planted in them:
//!
//! - **keyword/click correlations** — each ad class has positive keywords
//!   (searching them raises the user's click probability on that ad,
//!   Example 2's "icarly → deodorant" effect) and negative keywords
//!   (lowering it), so the z-test feature selection of §IV-B.3 has real
//!   signal to recover and its recovered keyword tables (Figs 17–19) can
//!   be checked against ground truth;
//! - **bots** — a small user fraction with enormous random activity and
//!   profile-independent clicking, matching §IV-B.1's observation that
//!   0.5% of users contribute 13% of clicks and searches;
//! - **trend spikes** — time-localized bursts of a keyword within a user
//!   segment (the icarly premiere), giving short-term BT something
//!   long-term aggregates would miss;
//! - a **Zipf-distributed background vocabulary** of keywords with no click
//!   signal, which feature selection must discard.
//!
//! Click decisions are made from the user's *actual last-6-hours keyword
//! history* through a ground-truth logistic model — exactly the shape the
//! BT pipeline assumes — so end-to-end CTR-lift experiments (Figs 21–23)
//! measure genuine recovery, not generator artifacts.
//!
//! Everything is deterministic given [`GenConfig::seed`].

pub mod config;
pub mod gen;
pub mod keywords;
pub mod truth;

pub use config::{AdClassSpec, GenConfig, TrendSpec};
pub use gen::{generate, GeneratedLog, LogEvent, StreamId};
pub use truth::GroundTruth;

use relation::schema::{ColumnType, Field};
use relation::Schema;

/// The unified BT schema of paper Fig 9:
/// `(Time, StreamId, UserId, KwAdId)`.
pub fn unified_schema() -> Schema {
    Schema::timestamped(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}

/// The payload view of the unified schema (no leading Time column), which
/// is what CQ plans compiled by TiMR are written against.
pub fn unified_payload_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}
