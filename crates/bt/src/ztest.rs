//! The unpooled two-proportion z-test for keyword elimination
//! (paper §IV-B.3).
//!
//! For a given ad and keyword K, let `c_k`/`i_k` be clicks/examples whose
//! UBP contained K at impression time, and `c`/`i` the ad's totals. With
//! `p_k = c_k / i_k` and `p_k' = (c − c_k) / (i − i_k)`, the statistic
//!
//! ```text
//! z = (p_k − p_k') / sqrt( p_k(1−p_k)/i_k + p_k'(1−p_k')/(i − i_k) )
//! ```
//!
//! follows N(0,1) under the null hypothesis that K is independent of
//! clicks. Highly positive z ⇒ the keyword raises CTR; highly negative ⇒
//! lowers it; |z| > 1.96 rejects independence at 95% confidence.

/// Counts feeding one z-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordCounts {
    /// Clicks on the ad with the keyword in the UBP.
    pub clicks_with: i64,
    /// Examples (impressions) of the ad with the keyword in the UBP.
    pub examples_with: i64,
    /// Total clicks on the ad.
    pub total_clicks: i64,
    /// Total examples of the ad.
    pub total_examples: i64,
}

impl KeywordCounts {
    /// CTR among examples with the keyword.
    pub fn ctr_with(&self) -> f64 {
        ratio(self.clicks_with, self.examples_with)
    }

    /// CTR among examples without the keyword.
    pub fn ctr_without(&self) -> f64 {
        ratio(
            self.total_clicks - self.clicks_with,
            self.total_examples - self.examples_with,
        )
    }
}

fn ratio(num: i64, den: i64) -> f64 {
    if den <= 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The z statistic, or `None` when it is undefined (no examples on one
/// side).
///
/// The variance terms use Agresti–Coull-style smoothed proportions
/// `(clicks + ½) / (examples + 1)` while the numerator keeps the raw
/// proportions. At healthy counts the correction is negligible; at zero
/// clicks it prevents the unpooled variance from collapsing to zero,
/// which would otherwise assign |z| ≈ √(i_without · p') to *every*
/// zero-click keyword regardless of how little evidence supports it —
/// the failure mode the paper's clicks-only support rule sidesteps, and
/// which reappears once example-count support (needed for negative
/// keywords) is allowed.
pub fn z_score(c: &KeywordCounts) -> Option<f64> {
    let i_with = c.examples_with;
    let i_without = c.total_examples - c.examples_with;
    if i_with <= 0 || i_without <= 0 {
        return None;
    }
    let p_with = c.ctr_with();
    let p_without = c.ctr_without();
    let smooth = |clicks: i64, examples: i64| (clicks as f64 + 0.5) / (examples as f64 + 1.0);
    let s_with = smooth(c.clicks_with, i_with);
    let s_without = smooth(c.total_clicks - c.clicks_with, i_without);
    let var =
        s_with * (1.0 - s_with) / i_with as f64 + s_without * (1.0 - s_without) / i_without as f64;
    if var <= 0.0 {
        return None;
    }
    Some((p_with - p_without) / var.sqrt())
}

/// Whether the keyword has enough support for the test to be sound.
///
/// The paper anchors support on clicks-with-keyword (≥ 5). That alone
/// starves *negatively* correlated keywords — their defining property is
/// suppressing clicks — so, at laptop scale, we also accept keywords with
/// at least `min_examples` impressions-with-keyword: enough independent
/// observations to judge a CTR drop. Setting `min_examples = i64::MAX`
/// recovers the strict paper rule.
pub fn has_support(c: &KeywordCounts, min_clicks: i64, min_examples: i64) -> bool {
    c.clicks_with >= min_clicks || c.examples_with >= min_examples
}

/// One-dimensional normal quantiles used as z thresholds in the paper's
/// sweeps (Fig 20/22): confidence → threshold.
pub fn threshold_for_confidence(confidence: f64) -> f64 {
    // Two-sided thresholds at the levels used in §V.
    match () {
        _ if (confidence - 0.80).abs() < 1e-9 => 1.28,
        _ if (confidence - 0.95).abs() < 1e-9 => 1.96,
        _ if (confidence - 0.99).abs() < 1e-9 => 2.56,
        _ => {
            // Rational approximation of the probit (Beasley–Springer–Moro
            // central region is unnecessary here; we invert via bisection
            // on the CDF, which is exact enough for thresholds).
            let p = 0.5 + confidence / 2.0;
            let (mut lo, mut hi) = (0.0f64, 10.0f64);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if normal_cdf(mid) < p {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        }
    }
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_correlation_gives_positive_z() {
        // 50/100 CTR with keyword vs 100/10000 without: strongly positive.
        let c = KeywordCounts {
            clicks_with: 50,
            examples_with: 100,
            total_clicks: 150,
            total_examples: 10_100,
        };
        let z = z_score(&c).unwrap();
        assert!(z > 5.0, "z = {z}");
    }

    #[test]
    fn negative_correlation_gives_negative_z() {
        let c = KeywordCounts {
            clicks_with: 0,
            examples_with: 500,
            total_clicks: 300,
            total_examples: 10_000,
        };
        let z = z_score(&c).unwrap();
        assert!(z < -3.0, "z = {z}");
    }

    #[test]
    fn independent_keyword_gives_small_z() {
        // Same CTR (5%) with and without the keyword.
        let c = KeywordCounts {
            clicks_with: 50,
            examples_with: 1000,
            total_clicks: 500,
            total_examples: 10_000,
        };
        let z = z_score(&c).unwrap();
        assert!(z.abs() < 0.5, "z = {z}");
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(z_score(&KeywordCounts {
            clicks_with: 0,
            examples_with: 0,
            total_clicks: 10,
            total_examples: 100,
        })
        .is_none());
        // All examples have the keyword: no "without" population.
        assert!(z_score(&KeywordCounts {
            clicks_with: 10,
            examples_with: 100,
            total_clicks: 10,
            total_examples: 100,
        })
        .is_none());
        // CTR 0 on both sides: smoothing keeps the variance positive and
        // the z is exactly zero (no difference in proportions).
        assert_eq!(
            z_score(&KeywordCounts {
                clicks_with: 0,
                examples_with: 50,
                total_clicks: 0,
                total_examples: 100,
            }),
            Some(0.0)
        );
    }

    #[test]
    fn zero_click_keywords_scale_with_evidence() {
        // The degenerate-variance guard: a zero-click keyword's |z| must
        // grow with its example count, not jump to a huge constant.
        let z_at = |examples_with: i64| {
            z_score(&KeywordCounts {
                clicks_with: 0,
                examples_with,
                total_clicks: 5_000,
                total_examples: 100_000,
            })
            .unwrap()
        };
        let small = z_at(40);
        let large = z_at(4_000);
        assert!(small < 0.0 && large < small, "small {small}, large {large}");
        // 40 examples with zero clicks is weak evidence: not past the 95%
        // threshold; 4000 examples with zero clicks is overwhelming.
        assert!(small > -3.0, "small-evidence z too extreme: {small}");
        assert!(large < -10.0, "large-evidence z too tame: {large}");
    }

    #[test]
    fn z_is_antisymmetric_in_proportion_swap() {
        let a = KeywordCounts {
            clicks_with: 40,
            examples_with: 100,
            total_clicks: 50,
            total_examples: 200,
        };
        // Swap the with/without populations.
        let b = KeywordCounts {
            clicks_with: a.total_clicks - a.clicks_with,
            examples_with: a.total_examples - a.examples_with,
            total_clicks: a.total_clicks,
            total_examples: a.total_examples,
        };
        let za = z_score(&a).unwrap();
        let zb = z_score(&b).unwrap();
        assert!((za + zb).abs() < 1e-9, "za={za} zb={zb}");
    }

    #[test]
    fn support_rule() {
        let c = KeywordCounts {
            clicks_with: 4,
            examples_with: 10,
            total_clicks: 50,
            total_examples: 100,
        };
        assert!(!has_support(&c, 5, i64::MAX));
        assert!(has_support(&c, 4, i64::MAX));
        // The example-support channel admits click-starved keywords.
        assert!(has_support(&c, 5, 10));
        assert!(!has_support(&c, 5, 11));
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn thresholds_match_paper_values() {
        assert_eq!(threshold_for_confidence(0.80), 1.28);
        assert_eq!(threshold_for_confidence(0.95), 1.96);
        assert_eq!(threshold_for_confidence(0.99), 2.56);
        // Generic path: 90% two-sided ≈ 1.645.
        let t = threshold_for_confidence(0.90);
        assert!((t - 1.645).abs() < 0.01, "t = {t}");
    }
}
