//! Abstract syntax for the StreamSQL dialect.

use crate::agg::AggExpr;
use crate::expr::Expr;
use relation::Schema;

/// A window duration with unit already resolved to ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Duration {
    /// Length in ticks.
    pub ticks: i64,
}

/// A window clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowClause {
    /// `WINDOW d` — sliding window.
    Sliding(Duration),
    /// `WINDOW d EVERY h` — hopping window of width `d` reporting every `h`.
    Hopping {
        /// Window width.
        width: Duration,
        /// Report period.
        hop: Duration,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A scalar expression with an output name.
    Expr {
        /// Output column name.
        name: String,
        /// The expression.
        expr: Expr,
    },
    /// An aggregate with an output name.
    Agg {
        /// Output column name.
        name: String,
        /// The aggregate.
        agg: AggExpr,
    },
}

/// A FROM source.
#[derive(Debug, Clone)]
pub enum SourceRef {
    /// A named stream with an inline payload schema.
    Stream {
        /// Stream (dataset) name.
        name: String,
        /// Declared payload schema.
        schema: Schema,
    },
    /// A parenthesized sub-query.
    Subquery {
        /// The nested query.
        query: Box<Query>,
        /// Optional alias (unused for name resolution; documents intent).
        alias: Option<String>,
    },
}

/// One SELECT statement.
#[derive(Debug, Clone)]
pub struct Select {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM source.
    pub source: SourceRef,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// Window clause.
    pub window: Option<WindowClause>,
    /// HAVING predicate (applied to the aggregate output).
    pub having: Option<Expr>,
}

/// A query: one or more selects combined with UNION ALL.
#[derive(Debug, Clone)]
pub struct Query {
    /// The unioned selects (length ≥ 1).
    pub selects: Vec<Select>,
}
