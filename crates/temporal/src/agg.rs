//! Aggregate specifications and incremental accumulators.
//!
//! Snapshot aggregation (paper §II-A.2) reports a value for every maximal
//! interval over which the set of *active* events is constant. The sweep in
//! [`crate::operators::aggregate`] adds and removes events as their
//! lifetimes open and close, so accumulators must support **retraction**:
//! Count/Sum/Avg keep running sums, Min/Max keep an ordered multiset.

use crate::compiled::CompiledExpr;
use crate::error::{Result, TemporalError};
use crate::expr::Expr;
use relation::{ColumnType, Row, Schema, Value};
use std::collections::BTreeMap;

/// An aggregate over the active-event snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// Number of active events.
    Count,
    /// Sum of a numeric expression.
    Sum(Expr),
    /// Minimum of an expression.
    Min(Expr),
    /// Maximum of an expression.
    Max(Expr),
    /// Mean of a numeric expression (double).
    Avg(Expr),
    /// Population standard deviation of a numeric expression (double).
    StdDev(Expr),
    /// Number of distinct non-null values of an expression.
    CountDistinct(Expr),
}

impl AggExpr {
    /// Result type of the aggregate against the input schema.
    pub fn infer_type(&self, schema: &Schema) -> Result<ColumnType> {
        match self {
            AggExpr::Count => Ok(ColumnType::Long),
            AggExpr::Sum(e) => match e.infer_type(schema)? {
                ColumnType::Double => Ok(ColumnType::Double),
                ColumnType::Int | ColumnType::Long => Ok(ColumnType::Long),
                t => Err(TemporalError::Plan(format!("SUM over non-numeric {t}"))),
            },
            AggExpr::Min(e) | AggExpr::Max(e) => e.infer_type(schema),
            AggExpr::Avg(e) => match e.infer_type(schema)? {
                ColumnType::Int | ColumnType::Long | ColumnType::Double => Ok(ColumnType::Double),
                t => Err(TemporalError::Plan(format!("AVG over non-numeric {t}"))),
            },
            AggExpr::StdDev(e) => match e.infer_type(schema)? {
                ColumnType::Int | ColumnType::Long | ColumnType::Double => Ok(ColumnType::Double),
                t => Err(TemporalError::Plan(format!("STDDEV over non-numeric {t}"))),
            },
            AggExpr::CountDistinct(_) => Ok(ColumnType::Long),
        }
    }

    /// The argument expression, if any.
    pub fn input_expr(&self) -> Option<&Expr> {
        match self {
            AggExpr::Count => None,
            AggExpr::Sum(e)
            | AggExpr::Min(e)
            | AggExpr::Max(e)
            | AggExpr::Avg(e)
            | AggExpr::StdDev(e)
            | AggExpr::CountDistinct(e) => Some(e),
        }
    }

    /// Build the matching accumulator.
    pub fn accumulator(&self) -> Accumulator {
        match self {
            AggExpr::Count => Accumulator::Count { n: 0 },
            AggExpr::Sum(_) => Accumulator::Sum {
                int_sum: 0,
                float_sum: 0.0,
                saw_float: false,
                n: 0,
            },
            AggExpr::Avg(_) => Accumulator::Avg { sum: 0.0, n: 0 },
            AggExpr::Min(_) => Accumulator::Extreme {
                values: BTreeMap::new(),
                min: true,
            },
            AggExpr::Max(_) => Accumulator::Extreme {
                values: BTreeMap::new(),
                min: false,
            },
            AggExpr::StdDev(_) => Accumulator::Moments {
                sum: 0.0,
                sum_sq: 0.0,
                n: 0,
            },
            AggExpr::CountDistinct(_) => Accumulator::Distinct {
                values: BTreeMap::new(),
            },
        }
    }

    /// Evaluate the argument against a row (Count has no argument).
    pub fn eval_arg(&self, schema: &Schema, row: &Row) -> Result<Value> {
        match self.input_expr() {
            None => Ok(Value::Null),
            Some(e) => e.eval(schema, row),
        }
    }

    /// Compile the argument against a schema for index-resolved per-event
    /// evaluation (`None` for COUNT, which takes no argument).
    pub fn compile_arg(&self, schema: &Schema) -> Option<CompiledExpr> {
        self.input_expr().map(|e| CompiledExpr::compile(e, schema))
    }

    /// Whether this aggregate over a wide window can be derived exactly by
    /// combining per-cell partials of a finer factor window
    /// (`plan::factor_windows`). COUNT/MIN/MAX and *integer* SUM combine
    /// bit-exactly; SUM over doubles is excluded because float addition is
    /// not associative, so the factored total could differ in the last ulp
    /// from the direct sweep. AVG/STDDEV/COUNT_DISTINCT have no
    /// partial-combining form here and fall back to private windows.
    pub fn combinable(&self, schema: &Schema) -> bool {
        match self {
            AggExpr::Count => true,
            AggExpr::Sum(e) => {
                matches!(e.infer_type(schema), Ok(ColumnType::Int | ColumnType::Long))
            }
            AggExpr::Min(_) | AggExpr::Max(_) => true,
            AggExpr::Avg(_) | AggExpr::StdDev(_) | AggExpr::CountDistinct(_) => false,
        }
    }

    /// The aggregate that combines factor-cell partials stored in column
    /// `name` into this aggregate's value over a wider window: counts and
    /// sums add up, extrema nest. `None` exactly when not [`combinable`].
    ///
    /// [`combinable`]: AggExpr::combinable
    pub fn combining(&self, name: &str) -> Option<AggExpr> {
        match self {
            AggExpr::Count | AggExpr::Sum(_) => Some(AggExpr::Sum(Expr::Column(name.into()))),
            AggExpr::Min(_) => Some(AggExpr::Min(Expr::Column(name.into()))),
            AggExpr::Max(_) => Some(AggExpr::Max(Expr::Column(name.into()))),
            AggExpr::Avg(_) | AggExpr::StdDev(_) | AggExpr::CountDistinct(_) => None,
        }
    }
}

impl std::fmt::Display for AggExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggExpr::Count => write!(f, "COUNT()"),
            AggExpr::Sum(e) => write!(f, "SUM({e})"),
            AggExpr::Min(e) => write!(f, "MIN({e})"),
            AggExpr::Max(e) => write!(f, "MAX({e})"),
            AggExpr::Avg(e) => write!(f, "AVG({e})"),
            AggExpr::StdDev(e) => write!(f, "STDDEV({e})"),
            AggExpr::CountDistinct(e) => write!(f, "COUNT_DISTINCT({e})"),
        }
    }
}

/// Retractable accumulator state for one aggregate.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// COUNT state.
    Count {
        /// Active-event count.
        n: i64,
    },
    /// SUM state; tracks whether any float was seen to pick the output type.
    Sum {
        /// Integer part of the running sum.
        int_sum: i64,
        /// Float running sum (used when any input was a double).
        float_sum: f64,
        /// Whether any double flowed in.
        saw_float: bool,
        /// Number of non-null values.
        n: i64,
    },
    /// AVG state.
    Avg {
        /// Running sum (as double).
        sum: f64,
        /// Number of non-null values.
        n: i64,
    },
    /// MIN/MAX state: ordered multiset of active values.
    Extreme {
        /// value -> multiplicity.
        values: BTreeMap<Value, usize>,
        /// True for MIN, false for MAX.
        min: bool,
    },
    /// STDDEV state: first two moments.
    Moments {
        /// Σx.
        sum: f64,
        /// Σx².
        sum_sq: f64,
        /// Number of non-null values.
        n: i64,
    },
    /// COUNT DISTINCT state: multiset of active values.
    Distinct {
        /// value -> multiplicity.
        values: BTreeMap<Value, usize>,
    },
}

impl Accumulator {
    /// Add one value to the snapshot. Null values are ignored (SQL-style),
    /// except COUNT, which counts events, not values.
    pub fn add(&mut self, v: &Value) {
        match self {
            Accumulator::Count { n } => *n += 1,
            Accumulator::Sum {
                int_sum,
                float_sum,
                saw_float,
                n,
            } => {
                if v.is_null() {
                    return;
                }
                if let Value::Double(d) = v {
                    *saw_float = true;
                    *float_sum += d;
                } else if let Some(i) = v.as_long() {
                    *int_sum += i;
                    *float_sum += i as f64;
                }
                *n += 1;
            }
            Accumulator::Avg { sum, n } => {
                if let Some(d) = v.as_double() {
                    *sum += d;
                    *n += 1;
                }
            }
            Accumulator::Extreme { values, .. } => {
                if !v.is_null() {
                    *values.entry(v.clone()).or_insert(0) += 1;
                }
            }
            Accumulator::Moments { sum, sum_sq, n } => {
                if let Some(x) = v.as_double() {
                    *sum += x;
                    *sum_sq += x * x;
                    *n += 1;
                }
            }
            Accumulator::Distinct { values } => {
                if !v.is_null() {
                    *values.entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
    }

    /// Retract one previously-added value.
    pub fn remove(&mut self, v: &Value) {
        match self {
            Accumulator::Count { n } => *n -= 1,
            Accumulator::Sum {
                int_sum,
                float_sum,
                n,
                ..
            } => {
                if v.is_null() {
                    return;
                }
                if let Value::Double(d) = v {
                    *float_sum -= d;
                } else if let Some(i) = v.as_long() {
                    *int_sum -= i;
                    *float_sum -= i as f64;
                }
                *n -= 1;
            }
            Accumulator::Avg { sum, n } => {
                if let Some(d) = v.as_double() {
                    *sum -= d;
                    *n -= 1;
                }
            }
            Accumulator::Extreme { values, .. } | Accumulator::Distinct { values } => {
                if v.is_null() {
                    return;
                }
                if let Some(count) = values.get_mut(v) {
                    *count -= 1;
                    if *count == 0 {
                        values.remove(v);
                    }
                }
            }
            Accumulator::Moments { sum, sum_sq, n } => {
                if let Some(x) = v.as_double() {
                    *sum -= x;
                    *sum_sq -= x * x;
                    *n -= 1;
                }
            }
        }
    }

    /// Current aggregate value for the snapshot.
    pub fn value(&self) -> Value {
        match self {
            Accumulator::Count { n } => Value::Long(*n),
            Accumulator::Sum {
                int_sum,
                float_sum,
                saw_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *saw_float {
                    Value::Double(*float_sum)
                } else {
                    Value::Long(*int_sum)
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *n as f64)
                }
            }
            Accumulator::Extreme { values, min } => {
                let entry = if *min {
                    values.keys().next()
                } else {
                    values.keys().next_back()
                };
                entry.cloned().unwrap_or(Value::Null)
            }
            Accumulator::Moments { sum, sum_sq, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    let mean = sum / *n as f64;
                    let var = (sum_sq / *n as f64 - mean * mean).max(0.0);
                    Value::Double(var.sqrt())
                }
            }
            Accumulator::Distinct { values } => Value::Long(values.len() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use relation::schema::Field;

    #[test]
    fn count_add_remove() {
        let mut a = AggExpr::Count.accumulator();
        a.add(&Value::Null);
        a.add(&Value::Null);
        assert_eq!(a.value(), Value::Long(2));
        a.remove(&Value::Null);
        assert_eq!(a.value(), Value::Long(1));
    }

    #[test]
    fn sum_retracts_and_types() {
        let mut a = AggExpr::Sum(col("x")).accumulator();
        a.add(&Value::Long(5));
        a.add(&Value::Long(7));
        assert_eq!(a.value(), Value::Long(12));
        a.remove(&Value::Long(5));
        assert_eq!(a.value(), Value::Long(7));
        a.add(&Value::Double(0.5));
        assert_eq!(a.value(), Value::Double(7.5));
        a.remove(&Value::Long(7));
        a.remove(&Value::Double(0.5));
        assert!(a.value().is_null());
    }

    #[test]
    fn min_max_multiset() {
        let mut mn = AggExpr::Min(col("x")).accumulator();
        let mut mx = AggExpr::Max(col("x")).accumulator();
        for v in [3i64, 1, 1, 9] {
            mn.add(&Value::Long(v));
            mx.add(&Value::Long(v));
        }
        assert_eq!(mn.value(), Value::Long(1));
        assert_eq!(mx.value(), Value::Long(9));
        mn.remove(&Value::Long(1));
        assert_eq!(mn.value(), Value::Long(1)); // one copy remains
        mn.remove(&Value::Long(1));
        assert_eq!(mn.value(), Value::Long(3));
        mx.remove(&Value::Long(9));
        assert_eq!(mx.value(), Value::Long(3));
    }

    #[test]
    fn avg_over_mixed_numerics() {
        let mut a = AggExpr::Avg(col("x")).accumulator();
        a.add(&Value::Long(1));
        a.add(&Value::Double(2.0));
        assert_eq!(a.value(), Value::Double(1.5));
    }

    #[test]
    fn nulls_ignored_except_count() {
        let mut s = AggExpr::Sum(col("x")).accumulator();
        s.add(&Value::Null);
        assert!(s.value().is_null());
        s.add(&Value::Long(4));
        s.add(&Value::Null);
        assert_eq!(s.value(), Value::Long(4));
    }

    #[test]
    fn stddev_retracts() {
        let mut a = AggExpr::StdDev(col("x")).accumulator();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(&Value::Double(v));
        }
        // Classic example: population stddev = 2.
        let got = a.value().as_double().unwrap();
        assert!((got - 2.0).abs() < 1e-12, "stddev {got}");
        // Retract down to a two-value set: {2, 4} → stddev 1.
        for v in [4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.remove(&Value::Double(v));
        }
        let got = a.value().as_double().unwrap();
        assert!((got - 1.0).abs() < 1e-12, "stddev {got}");
        a.remove(&Value::Double(2.0));
        a.remove(&Value::Double(4.0));
        assert!(a.value().is_null());
    }

    #[test]
    fn count_distinct_multiset() {
        let mut a = AggExpr::CountDistinct(col("x")).accumulator();
        for v in ["a", "b", "a"] {
            a.add(&Value::str(v));
        }
        assert_eq!(a.value(), Value::Long(2));
        a.remove(&Value::str("a"));
        assert_eq!(a.value(), Value::Long(2), "one `a` copy remains");
        a.remove(&Value::str("a"));
        assert_eq!(a.value(), Value::Long(1));
        a.add(&Value::Null); // nulls don't count
        assert_eq!(a.value(), Value::Long(1));
    }

    #[test]
    fn infer_types() {
        let s = Schema::new(vec![
            Field::new("L", ColumnType::Long),
            Field::new("D", ColumnType::Double),
            Field::new("S", ColumnType::Str),
        ]);
        assert_eq!(AggExpr::Count.infer_type(&s).unwrap(), ColumnType::Long);
        assert_eq!(
            AggExpr::Sum(col("L")).infer_type(&s).unwrap(),
            ColumnType::Long
        );
        assert_eq!(
            AggExpr::Sum(col("D")).infer_type(&s).unwrap(),
            ColumnType::Double
        );
        assert_eq!(
            AggExpr::Avg(col("L")).infer_type(&s).unwrap(),
            ColumnType::Double
        );
        assert_eq!(
            AggExpr::Min(col("S")).infer_type(&s).unwrap(),
            ColumnType::Str
        );
        assert!(AggExpr::Sum(col("S")).infer_type(&s).is_err());
    }
}
