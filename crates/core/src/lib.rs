//! # TiMR — Temporal queries on Map-Reduce
//!
//! The paper's primary contribution (§III): a framework that runs temporal
//! continuous queries over massive offline logs by compiling them onto an
//! *unmodified* map-reduce platform with an *unmodified* single-node DSMS
//! embedded inside reducers.
//!
//! The pipeline mirrors Fig 5 of the paper:
//!
//! 1. **Parse query** — users build a [`temporal::LogicalPlan`] with the
//!    fluent query builder (the LINQ analogue).
//! 2. **Annotate plan** — data-parallel semantics are added by placing
//!    logical *exchange* operators on plan edges ([`annotate::Annotation`]),
//!    either by hand (hints) or with the cost-based optimizer
//!    ([`optimizer`], paper §VI / Algorithm 1).
//! 3. **Make fragments** — a top-down traversal cuts the plan at exchange
//!    edges into `{fragment, key}` pairs ([`fragment`]).
//! 4. **Convert to M-R** — each fragment becomes a map-reduce stage whose
//!    map phase partitions by `hash(key) mod machines` (§III-C.3) and whose
//!    reducer embeds the DSMS ([`compile::DsmsReducer`]); rows are converted
//!    to events and back at stage boundaries ([`bridge`], §III-C.2's
//!    push/pull queue included).
//!
//! [`temporal_partition`] implements the paper's second parallelization
//! axis (§III-B): windowed queries with *no* partitionable payload key are
//! split along the time axis into overlapping spans.
//!
//! [`runner::TimrJob`] ties it together: given a plan, an annotation, and a
//! DFS holding the input logs, it compiles, runs the stages on a
//! [`mapreduce::Cluster`], and returns the output dataset plus statistics.

pub mod annotate;
pub mod bridge;
pub mod compile;
pub mod error;
pub mod fragment;
pub(crate) mod mapper;
pub mod multi;
pub mod optimizer;
pub mod runner;
pub mod temporal_partition;

pub use annotate::{Annotation, ExchangeKey};
pub use bridge::EventEncoding;
pub use error::{Result, TimrError};
pub use fragment::{Fragment, FragmentInput};
pub use multi::{CompiledMultiJob, MultiTimrJob, MultiTimrOutput};
pub use runner::{TimrJob, TimrOutput};
