//! Error type shared by the relational layer.

use std::fmt;

/// Errors raised by the relational data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A value had a different type than the schema declared.
    TypeMismatch {
        /// Column (or context) where the mismatch occurred.
        column: String,
        /// Type the schema expected.
        expected: String,
        /// Type actually present.
        actual: String,
    },
    /// A row had a different arity than its schema.
    ArityMismatch {
        /// Number of fields the schema declares.
        expected: usize,
        /// Number of values in the row.
        actual: usize,
    },
    /// A textual record could not be decoded.
    Codec(String),
    /// Two schemas that had to be identical were not.
    SchemaMismatch(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            RelationError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in `{column}`: expected {expected}, got {actual}"
            ),
            RelationError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} fields, row has {actual}"
                )
            }
            RelationError::Codec(msg) => write!(f, "codec error: {msg}"),
            RelationError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, RelationError>;
