//! Fig 15: per-machine DSMS event throughput for each BT sub-query.
//!
//! The paper reports events/second sustained by the embedded single-node
//! DSMS for BotElim, GenTrainData, TotalCount, PerKWCount, CalcScore, and
//! Scoring. We time each query plan's single-node execution over the
//! datasets produced by the pipeline and report input events per second.

use super::Ctx;
use crate::table::Table;
use bt::queries;
use rustc_hash::FxHashMap;
use std::time::Instant;
use temporal::exec::{execute_single, Bindings};
use temporal::EventStream;
use timr::EventEncoding;

fn decode(
    ctx: &Ctx,
    dataset: &str,
    payload: relation::Schema,
    encoding: EventEncoding,
) -> EventStream {
    let ds = ctx.workload.dfs.get(dataset).expect("dataset exists");
    encoding
        .decode_stream(ds.iter(), &payload)
        .expect("decode dataset")
}

fn time_query(
    name: &str,
    plan: &temporal::LogicalPlan,
    sources: Vec<(&str, EventStream)>,
    table: &mut Table,
) {
    let events: usize = sources.iter().map(|(_, s)| s.len()).sum();
    let bindings: Bindings = sources
        .into_iter()
        .map(|(n, s)| (n.to_string(), s))
        .collect::<FxHashMap<_, _>>();
    let start = Instant::now();
    let out = execute_single(plan, &bindings).expect("query runs");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    table.row(vec![
        name.to_string(),
        events.to_string(),
        out.len().to_string(),
        format!("{:.0}", events as f64 / elapsed),
    ]);
}

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let artifacts_names = {
        let a = ctx.artifacts();
        (a.clean.clone(), a.labels.clone(), a.train_rows.clone())
    };
    let (clean, labels, train_rows) = artifacts_names;

    let logs = decode(ctx, "logs", queries::log_payload(), EventEncoding::Point);
    let clean_s = decode(ctx, &clean, queries::log_payload(), EventEncoding::Interval);
    let labels_s = decode(
        ctx,
        &labels,
        queries::labels_payload(),
        EventEncoding::Interval,
    );
    let train_s = decode(
        ctx,
        &train_rows,
        queries::train_rows_payload(),
        EventEncoding::Interval,
    );

    let mut table = Table::new(&["Sub-query", "Input events", "Output events", "Events/sec"]);

    let bot = queries::bot_elim::query(&params);
    time_query("BotElim", &bot.plan, vec![("logs", logs)], &mut table);

    let labels_q = queries::train_data::labels_query(&params);
    time_query(
        "GenTrainData/labels",
        &labels_q.plan,
        vec![("clean_logs", clean_s.clone())],
        &mut table,
    );

    let train_q = queries::train_data::train_query(&params);
    time_query(
        "GenTrainData",
        &train_q.plan,
        vec![("clean_logs", clean_s)],
        &mut table,
    );

    let fs_q = queries::feature_selection::query(&params);
    time_query(
        "TotalCount+PerKWCount+CalcScore",
        &fs_q.plan,
        vec![("labels", labels_s), ("train_rows", train_s.clone())],
        &mut table,
    );

    // Retrain every 6 hours over a 12-hour window so model validity
    // intervals overlap the profile timeline (scoring joins the two).
    let mut model_params = params.clone();
    model_params.horizon = 6 * temporal::HOUR;
    let model_q = queries::model::model_query(&model_params, bt::lr::LrConfig::default());
    let models_out = execute_single(
        &model_q.plan,
        &[("train_rows".to_string(), train_s.clone())]
            .into_iter()
            .collect::<FxHashMap<_, _>>(),
    )
    .expect("model query");
    time_query(
        "ModelGen (LR UDO)",
        &model_q.plan,
        vec![("train_rows", train_s.clone())],
        &mut table,
    );

    // Scoring: profiles = (UserId, Keyword, Cnt) view of the training
    // rows; models = the ModelGen output.
    let profiles = {
        use temporal::expr::col;
        let q = temporal::Query::new();
        let out = q
            .source("train_rows", queries::train_rows_payload())
            .project(vec![
                ("UserId".to_string(), col("UserId")),
                ("Keyword".to_string(), col("Keyword")),
                ("Cnt".to_string(), col("Cnt")),
            ]);
        let plan = q.build(vec![out]).expect("projection plan");
        execute_single(
            &plan,
            &[("train_rows".to_string(), train_s)]
                .into_iter()
                .collect::<FxHashMap<_, _>>(),
        )
        .expect("profiles view")
    };
    let scoring_q = queries::model::scoring_query(&params);
    time_query(
        "Scoring",
        &scoring_q.plan,
        vec![("profiles", profiles), ("models", models_out)],
        &mut table,
    );

    format!(
        "Fig 15 — single-node DSMS event rates (one partition per query):\n{}",
        table.render()
    )
}
