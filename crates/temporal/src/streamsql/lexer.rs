//! Tokenizer for the StreamSQL dialect.

use crate::error::{Result, TemporalError};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (uppercased keywords matched case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// One of `( ) , * + - / = < > <= >= <>`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Whether this token is the given symbol.
    pub fn is_sym(&self, sym: &str) -> bool {
        matches!(&self.kind, TokenKind::Symbol(s) if *s == sym)
    }
}

fn err(offset: usize, msg: impl std::fmt::Display) -> TemporalError {
    TemporalError::Plan(format!("StreamSQL lex error at byte {offset}: {msg}"))
}

/// Tokenize StreamSQL text.
pub fn tokenize(text: &str) -> Result<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' | ')' | ',' | '*' | '+' | '-' | '/' | '=' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => "=",
                };
                out.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                let sym = match bytes.get(i + 1).copied() {
                    Some(b'=') => {
                        i += 1;
                        "<="
                    }
                    Some(b'>') => {
                        i += 1;
                        "<>"
                    }
                    _ => "<",
                };
                out.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: start,
                });
                i += 1;
            }
            '>' => {
                let sym = if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    ">="
                } else {
                    ">"
                };
                out.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: start,
                });
                i += 1;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(b'\'') => {
                            // '' escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let lit = &text[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        lit.parse()
                            .map_err(|_| err(start, format!("bad float `{lit}`")))?,
                    )
                } else {
                    TokenKind::Int(
                        lit.parse()
                            .map_err(|_| err(start, format!("bad integer `{lit}`")))?,
                    )
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(text[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => return Err(err(start, format!("unexpected character `{other}`"))),
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: text.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize("SELECT a, COUNT(*) FROM s(a INT) WHERE a >= 10.5").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "SELECT"));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Symbol(">="))));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TokenKind::Float(f) if *f == 10.5)));
        assert!(matches!(kinds.last().unwrap(), TokenKind::Eof));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert!(matches!(&toks[0].kind, TokenKind::Str(s) if s == "it's"));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn two_char_symbols() {
        let toks = tokenize("a <> b <= c >= d < e > f").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<>", "<=", ">=", "<", ">"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT ?").is_err());
    }
}
