//! PR 5 acceptance benchmark: the deterministic chaos engine.
//!
//! Two measurements over the PR 4 click-scoring job shape:
//!
//! 1. **Fault-free overhead**: the always-on robustness machinery —
//!    `catch_unwind` around every task attempt plus length+checksum
//!    integrity frames on map extents and shuffle partitions — measured
//!    by running the job with integrity verification on vs off,
//!    interleaved so system noise lands evenly. The target is <3%
//!    overhead on stage wall time; the measured figure is recorded, and
//!    the outputs must stay byte-identical.
//! 2. **Recovery**: the same job under the standard chaos schedule
//!    (seeded panics, transient kills, shuffle/extent corruption, and
//!    delays in every phase, capped below the retry budget). The output
//!    must be byte-identical to the clean run; the wall-time ratio and
//!    the fault counters from the job summary are reported.
//!
//! Results go to `BENCH_PR5.json` for machine consumption.

use crate::table::Table;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, FaultTotals, RetryPolicy};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use std::time::Duration;
use temporal::exec::ExecMode;
use temporal::expr::{col, lit};
use temporal::plan::{Operator, Query};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

/// Log shape (mirrors the PR 2/PR 4 end-to-end job, slightly smaller so
/// the chaos runs stay cheap in CI).
const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 12_000;
const PARTITIONS: usize = 8;
const USERS: usize = 500;
/// Interleaved repetitions per configuration (fastest run is kept).
const REPS: usize = 5;
/// The standard chaos schedule's seed.
const CHAOS_SEED: u64 = 7;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
        Field::new("Position", ColumnType::Long),
    ])
}

fn build_log() -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&op_schema());
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            let u = i as usize % USERS;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300,
                i % 8
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

/// The PR 4 feature projection: eight expressions per row, so the
/// overhead figure is measured against realistic reduce-phase work.
fn feature_exprs() -> Vec<(String, temporal::Expr)> {
    vec![
        ("UserId".into(), col("UserId")),
        ("KwAdId".into(), col("KwAdId")),
        ("Dwell".into(), col("Dwell")),
        (
            "Score".into(),
            col("Dwell")
                .mul(lit(8))
                .sub(col("Position").mul(lit(3)))
                .add(col("StreamId")),
        ),
        (
            "SlotBias".into(),
            col("Position").mul(col("Position")).add(lit(1)),
        ),
        (
            "Engaged".into(),
            col("Dwell").ge(lit(30)).and(col("Position").lt(lit(4))),
        ),
        (
            "DwellNorm".into(),
            col("Dwell").mul(lit(1000)).div(col("Dwell").add(lit(60))),
        ),
        (
            "Interaction".into(),
            col("Dwell").mul(col("Position")).sub(col("StreamId")),
        ),
    ]
}

/// The PR 4 click-scoring shape: filter + feature projection + refilter +
/// second projection + keyed tumbling aggregation.
fn click_score_job() -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))))
        .project(feature_exprs())
        .filter(col("Engaged").or(col("Score").ge(lit(1200))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("ScoreSq".into(), col("Score").mul(col("Score"))),
            (
                "Mix".into(),
                col("Score")
                    .mul(lit(3))
                    .add(col("SlotBias").mul(lit(2)))
                    .sub(col("Interaction")),
            ),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("ScoreSum".into(), temporal::agg::AggExpr::Sum(col("Score"))),
                ("MixSum".into(), temporal::agg::AggExpr::Sum(col("Mix"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr5", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(ExecMode::Compiled)
}

/// The standard chaos schedule (kept in sync with `tests/prop_chaos.rs`):
/// every fault kind enabled, capped at attempt 2 so the 4-attempt retry
/// budget always converges.
fn standard_chaos() -> ChaosPlan {
    ChaosPlan::seeded(CHAOS_SEED)
        .with_panics(0.15)
        .with_transients(0.15)
        .with_corruption(0.12)
        .with_delays(0.10, Duration::from_micros(200))
        .with_fault_cap(2)
}

struct JobRun {
    wall: Duration,
    output: Vec<Vec<Row>>,
    faults: FaultTotals,
}

fn run_job_once(log: &Dataset, threads: usize, chaos: ChaosPlan, integrity: bool) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos,
        retry: RetryPolicy::no_backoff(4),
        integrity,
        ..ClusterConfig::default()
    });
    let out = click_score_job().run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
        faults: out.stats.fault_totals(),
    }
}

fn best(runs: Vec<JobRun>) -> JobRun {
    runs.into_iter().min_by_key(|r| r.wall).expect("REPS > 0")
}

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let log = build_log();
    let rows = log.len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // 1. Fault-free overhead, interleaved (on, off, on, off, …).
    let mut on_runs = Vec::new();
    let mut off_runs = Vec::new();
    for _ in 0..REPS {
        on_runs.push(run_job_once(&log, threads, ChaosPlan::none(), true));
        off_runs.push(run_job_once(&log, threads, ChaosPlan::none(), false));
    }
    let on = best(on_runs);
    let off = best(off_runs);
    assert_eq!(
        on.output, off.output,
        "integrity framing must not change output bytes"
    );
    assert!(!on.faults.any(), "a clean run must observe no faults");
    let overhead_pct = (on.wall.as_secs_f64() / off.wall.as_secs_f64().max(1e-9) - 1.0) * 100.0;

    // 2. Recovery under the standard chaos schedule.
    let chaotic = best(
        (0..REPS)
            .map(|_| run_job_once(&log, threads, standard_chaos(), true))
            .collect(),
    );
    assert_eq!(
        on.output, chaotic.output,
        "chaos must be invisible in the output bytes"
    );
    assert!(
        chaotic.faults.any(),
        "the standard schedule must inject at least one fault"
    );
    let recovery_ratio = chaotic.wall.as_secs_f64() / on.wall.as_secs_f64().max(1e-9);

    let mut table = Table::new(&["Configuration", "Wall ms", "Retries", "Panics", "Corrupt"]);
    let mut push = |name: &str, r: &JobRun| {
        table.row(vec![
            name.into(),
            format!("{:.1}", ms(r.wall)),
            r.faults.task_retries.to_string(),
            r.faults.panics_contained.to_string(),
            r.faults.corruption_detected.to_string(),
        ]);
    };
    push("integrity off, clean", &off);
    push("integrity on, clean", &on);
    push("integrity on, chaos", &chaotic);

    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr5".into())),
        ("rows".into(), serde_json::Value::UInt(rows as u64)),
        ("threads".into(), serde_json::Value::UInt(threads as u64)),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        (
            "clean_unframed_wall_ms".into(),
            serde_json::Value::Float(ms(off.wall)),
        ),
        (
            "clean_framed_wall_ms".into(),
            serde_json::Value::Float(ms(on.wall)),
        ),
        (
            "integrity_overhead_pct".into(),
            serde_json::Value::Float(overhead_pct),
        ),
        (
            "chaos_wall_ms".into(),
            serde_json::Value::Float(ms(chaotic.wall)),
        ),
        (
            "chaos_recovery_ratio".into(),
            serde_json::Value::Float(recovery_ratio),
        ),
        ("chaos_seed".into(), serde_json::Value::UInt(CHAOS_SEED)),
        (
            "chaos_faults".into(),
            serde_json::Value::Object(vec![
                (
                    "task_retries".into(),
                    serde_json::Value::UInt(chaotic.faults.task_retries),
                ),
                (
                    "panics_contained".into(),
                    serde_json::Value::UInt(chaotic.faults.panics_contained),
                ),
                (
                    "transient_faults".into(),
                    serde_json::Value::UInt(chaotic.faults.transient_faults),
                ),
                (
                    "corruption_detected".into(),
                    serde_json::Value::UInt(chaotic.faults.corruption_detected),
                ),
                (
                    "delays_injected".into(),
                    serde_json::Value::UInt(chaotic.faults.delays_injected),
                ),
                (
                    "backoff_ms".into(),
                    serde_json::Value::Float(ms(chaotic.faults.backoff_time)),
                ),
            ]),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR5.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR5.json: {e}");
    }

    format!(
        "PR 5 — chaos engine: fault-free overhead and recovery over {rows} rows, \
         {threads} threads (best of {REPS}; written to BENCH_PR5.json):\n{}\
         integrity overhead {overhead_pct:+.2}% (target <3%); chaos run \
         byte-identical to clean at {recovery_ratio:.2}x wall\n",
        table.render(),
    )
}
