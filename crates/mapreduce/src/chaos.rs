//! Seeded, deterministic chaos engine and fault-tolerance policy types.
//!
//! The paper's robustness claim (§III-C.1) is that TiMR is *repeatable*:
//! restarting any failed task reproduces byte-identical output, so the
//! M-R platform's restart-on-failure strategy is sound. This module
//! supplies the machinery to *prove* that claim under adversarial
//! schedules rather than a single scripted kill:
//!
//! - [`ChaosPlan`] decides, as a **pure function** of
//!   `(seed, stage, phase, task, attempt)`, whether a task attempt is hit
//!   by a panic, a transient error, data corruption, or an artificial
//!   delay. Because the decision is derived by hashing those coordinates
//!   into a seeded PRNG — never by sampling shared mutable RNG state —
//!   the same plan injects the same faults regardless of thread count or
//!   scheduling order, which is what makes chaos runs comparable to clean
//!   runs byte-for-byte.
//! - [`RetryPolicy`] is the cluster's answer: bounded attempts with
//!   deterministic, jitter-free exponential backoff.
//! - [`ExtentFrame`] is the integrity layer: a length + FxHash checksum
//!   frame over a row extent, computed when data is produced and verified
//!   when it is consumed, so corruption surfaces as a typed error instead
//!   of silently wrong output.

use crate::error::TaskPhase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relation::hash::stable_hash;
use relation::Row;
use std::time::Duration;

/// Prefix of every panic payload the chaos engine injects. Used by the
/// quiet panic hook to suppress backtrace spam for *injected* panics only.
pub const INJECTED_PANIC_MARKER: &str = "chaos-injected panic";

/// The kinds of fault a [`ChaosPlan`] can inject into one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic inside the task body (exercises `catch_unwind` containment).
    Panic,
    /// Fail the attempt with a transient task error (a simulated killed
    /// worker / flaky I/O); this is also how explicit kills surface.
    Transient,
    /// Corrupt the data the attempt reads, so the integrity frame must
    /// detect it and force recovery.
    Corrupt,
    /// Sleep before doing the work (a straggler); not a failure.
    Delay,
    /// SIGKILL the worker *process* executing the task. On the
    /// multi-process backend this is a real, uncatchable process death
    /// (the worker consults the plan for its own coordinate and kills
    /// itself, so the schedule stays a pure function of the coordinates);
    /// the in-process thread backend has no process to kill and degrades
    /// it to [`FaultKind::Transient`].
    KillProcess,
}

/// A seeded, deterministic fault-injection schedule.
///
/// Two ingredient lists compose:
/// - **explicit faults** ([`ChaosPlan::kill`], [`ChaosPlan::corrupt`])
///   target one `(stage, phase, task)` coordinate on its first attempt —
///   the scripted-failure style the old `FailurePlan` offered for reduce
///   tasks only, now phase-general;
/// - **seeded faults** (the `*_prob` knobs) hit every task attempt
///   independently with the configured probabilities, decided by hashing
///   the attempt's coordinates into the seed.
///
/// [`ChaosPlan::with_fault_cap`] stops seeded injection from attempt
/// `cap` onward, guaranteeing that a run with `cap < max_attempts` always
/// succeeds — the repeatability property tests rely on this.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    seed: u64,
    panic_prob: f64,
    transient_prob: f64,
    corrupt_prob: f64,
    delay_prob: f64,
    process_kill_prob: f64,
    delay: Duration,
    fault_cap: Option<usize>,
    kills: Vec<(String, TaskPhase, usize)>,
    corrupts: Vec<(String, TaskPhase, usize)>,
    process_kills: Vec<(String, TaskPhase, usize)>,
    wire_corrupts: Vec<(String, TaskPhase, usize)>,
    wire_delays: Vec<(String, TaskPhase, usize, Duration)>,
    stragglers: Vec<(String, TaskPhase, usize, Duration)>,
}

impl ChaosPlan {
    /// No faults at all (the default).
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// An empty plan carrying `seed` for the probabilistic knobs.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Inject a panic into each task attempt with probability `p`.
    pub fn with_panics(mut self, p: f64) -> Self {
        self.panic_prob = p;
        self
    }

    /// Fail each task attempt with a transient error with probability `p`.
    pub fn with_transients(mut self, p: f64) -> Self {
        self.transient_prob = p;
        self
    }

    /// Corrupt the data read by each task attempt with probability `p`.
    /// (Reduce attempts downgrade this to a transient fault — a reducer
    /// has no input read of its own to corrupt; shuffle fetch covers it.)
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Delay each task attempt by `delay` with probability `p`.
    pub fn with_delays(mut self, p: f64, delay: Duration) -> Self {
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Stop seeded injection from attempt `cap` onward, so a task can
    /// always succeed within `cap + 1` attempts. Explicit kills/corrupts
    /// are unaffected (they only ever fire on attempt 0).
    pub fn with_fault_cap(mut self, cap: usize) -> Self {
        self.fault_cap = Some(cap);
        self
    }

    /// Kill the first attempt of one specific task with a transient
    /// error. Unlike the old `FailurePlan`, any phase can be targeted.
    pub fn kill(mut self, stage: impl Into<String>, phase: TaskPhase, task: usize) -> Self {
        self.kills.push((stage.into(), phase, task));
        self
    }

    /// Corrupt the data read by the first attempt of one specific task.
    pub fn corrupt(mut self, stage: impl Into<String>, phase: TaskPhase, task: usize) -> Self {
        self.corrupts.push((stage.into(), phase, task));
        self
    }

    /// SIGKILL the worker process running the first attempt of one
    /// specific task ([`FaultKind::KillProcess`]).
    pub fn kill_process(mut self, stage: impl Into<String>, phase: TaskPhase, task: usize) -> Self {
        self.process_kills.push((stage.into(), phase, task));
        self
    }

    /// SIGKILL the worker process of each task attempt with probability
    /// `p` (multi-process backend; degrades to a transient kill on the
    /// thread backend).
    pub fn with_process_kills(mut self, p: f64) -> Self {
        self.process_kill_prob = p;
        self
    }

    /// Flip one byte in the result frame a worker sends for the first
    /// attempt of one specific task, *after* the frame checksum is
    /// computed — the receiver's FxHash frame verification must catch it
    /// and re-execute the task. Only meaningful on the multi-process
    /// backend (the thread backend has no wire); ignored elsewhere.
    pub fn corrupt_wire(mut self, stage: impl Into<String>, phase: TaskPhase, task: usize) -> Self {
        self.wire_corrupts.push((stage.into(), phase, task));
        self
    }

    /// Delay the result frame a worker sends for one specific task by
    /// `delay` (socket-level latency injection; never a failure).
    pub fn delay_wire(
        mut self,
        stage: impl Into<String>,
        phase: TaskPhase,
        task: usize,
        delay: Duration,
    ) -> Self {
        self.wire_delays.push((stage.into(), phase, task, delay));
        self
    }

    /// Make the *primary* execution of one specific task a straggler: its
    /// first non-speculative attempt sleeps `delay` before computing, so
    /// the speculation machinery has a deterministic straggler to race. A
    /// speculative duplicate of the same task skips the sleep (that is
    /// what lets it win). Delays never change output bytes, so this knob
    /// preserves byte-determinism by construction.
    pub fn straggle(
        mut self,
        stage: impl Into<String>,
        phase: TaskPhase,
        task: usize,
        delay: Duration,
    ) -> Self {
        self.stragglers.push((stage.into(), phase, task, delay));
        self
    }

    /// Whether this plan can inject nothing at all.
    pub fn is_clean(&self) -> bool {
        self.kills.is_empty()
            && self.corrupts.is_empty()
            && self.process_kills.is_empty()
            && self.wire_corrupts.is_empty()
            && self.wire_delays.is_empty()
            && self.stragglers.is_empty()
            && self.panic_prob <= 0.0
            && self.transient_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.process_kill_prob <= 0.0
    }

    /// Whether this plan can inject panics (decides whether the quiet
    /// panic hook is worth installing).
    pub fn injects_panics(&self) -> bool {
        self.panic_prob > 0.0
    }

    /// The artificial delay used by [`FaultKind::Delay`] faults.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// The fault (if any) scheduled for this task attempt.
    ///
    /// Pure in `(self, stage, phase, task, attempt)`: the PRNG is seeded
    /// from a stable hash of those coordinates, so concurrent tasks never
    /// perturb each other's draws.
    pub fn fault_for(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        attempt: usize,
    ) -> Option<FaultKind> {
        let hits = |list: &[(String, TaskPhase, usize)]| {
            attempt == 0
                && list
                    .iter()
                    .any(|(s, ph, t)| s == stage && *ph == phase && *t == task)
        };
        if hits(&self.kills) {
            return Some(FaultKind::Transient);
        }
        if hits(&self.corrupts) {
            return Some(self.corrupt_kind(phase));
        }
        if hits(&self.process_kills) {
            return Some(FaultKind::KillProcess);
        }
        let total = self.panic_prob
            + self.transient_prob
            + self.corrupt_prob
            + self.delay_prob
            + self.process_kill_prob;
        if total <= 0.0 {
            return None;
        }
        if self.fault_cap.is_some_and(|cap| attempt >= cap) {
            return None;
        }
        let coords = stable_hash(&(stage, phase, task as u64, attempt as u64));
        let mut rng = SmallRng::seed_from_u64(self.seed ^ coords);
        let roll: f64 = rng.gen();
        let mut edge = self.panic_prob;
        if roll < edge {
            return Some(FaultKind::Panic);
        }
        edge += self.transient_prob;
        if roll < edge {
            return Some(FaultKind::Transient);
        }
        edge += self.corrupt_prob;
        if roll < edge {
            return Some(self.corrupt_kind(phase));
        }
        edge += self.delay_prob;
        if roll < edge {
            return Some(FaultKind::Delay);
        }
        edge += self.process_kill_prob;
        if roll < edge {
            return Some(FaultKind::KillProcess);
        }
        None
    }

    /// Whether the result frame of this task attempt should be corrupted
    /// in flight (first attempt only, like the other explicit faults).
    pub fn wire_corrupt_for(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        attempt: usize,
    ) -> bool {
        attempt == 0
            && self
                .wire_corrupts
                .iter()
                .any(|(s, ph, t)| s == stage && *ph == phase && *t == task)
    }

    /// The socket-level delay (if any) scheduled before this task
    /// attempt's result frame is sent (first attempt only).
    pub fn wire_delay_for(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        attempt: usize,
    ) -> Option<Duration> {
        if attempt != 0 {
            return None;
        }
        self.wire_delays
            .iter()
            .find(|(s, ph, t, _)| s == stage && *ph == phase && *t == task)
            .map(|(_, _, _, d)| *d)
    }

    /// The straggler sleep (if any) scheduled for the primary execution
    /// of this task. Applies to the first non-speculative attempt only;
    /// the caller passes `speculative` so duplicates skip it.
    pub fn straggle_for(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        attempt: usize,
        speculative: bool,
    ) -> Option<Duration> {
        if attempt != 0 || speculative {
            return None;
        }
        self.stragglers
            .iter()
            .find(|(s, ph, t, _)| s == stage && *ph == phase && *t == task)
            .map(|(_, _, _, d)| *d)
    }

    /// Reduce attempts have no data read of their own to corrupt (shuffle
    /// fetch owns the partition read), so corruption degrades to a
    /// transient kill there.
    fn corrupt_kind(&self, phase: TaskPhase) -> FaultKind {
        if phase == TaskPhase::Reduce {
            FaultKind::Transient
        } else {
            FaultKind::Corrupt
        }
    }
}

/// Bounded retries with deterministic, jitter-free exponential backoff:
/// the pause after failed attempt `k` (0-based) is
/// `min(backoff_base << k, backoff_cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (including the first); clamped to ≥ 1.
    pub max_attempts: usize,
    /// Pause after the first failed attempt; zero disables backoff.
    pub backoff_base: Duration,
    /// Upper bound on any single pause.
    pub backoff_cap: Duration,
    /// Per-attempt wall-clock deadline. An attempt that exceeds it fails
    /// with the retryable `TaskError::TimedOut` and is re-executed like
    /// any other fault, escalating to `TaskExhausted` when attempts run
    /// out. The thread backend enforces it post-hoc (a late result is
    /// discarded — attempts cannot be preempted in-process); the
    /// multi-process backend enforces it preemptively by SIGKILLing the
    /// over-deadline worker. `None` (the default) disables the deadline.
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(250),
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` and no backoff (tests, benchmarks).
    pub fn no_backoff(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            attempt_timeout: None,
        }
    }

    /// This policy with a per-attempt deadline.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = Some(timeout);
        self
    }

    /// The pause after 0-based failed attempt `k`.
    pub fn backoff_after(&self, failed_attempt: usize) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << failed_attempt.min(16) as u32;
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// A length + checksum integrity frame over one extent of rows.
///
/// Computed when an extent is produced (DFS put, shuffle merge, persist
/// save) and verified when it is consumed (map scan, shuffle fetch,
/// persist load). The checksum is the workspace-wide stable FxHash over
/// the row vector — the same deterministic hash partitioning uses — so a
/// frame is itself reproducible across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentFrame {
    /// Number of rows framed.
    pub rows: u64,
    /// Stable FxHash of the framed rows.
    pub checksum: u64,
}

impl ExtentFrame {
    /// Frame an extent.
    pub fn compute(rows: &[Row]) -> Self {
        ExtentFrame {
            rows: rows.len() as u64,
            checksum: stable_hash(&rows),
        }
    }

    /// Check `rows` against this frame; `Err` describes the mismatch.
    pub fn verify(&self, rows: &[Row]) -> Result<(), String> {
        if rows.len() as u64 != self.rows {
            return Err(format!(
                "length mismatch: {} row(s), frame says {}",
                rows.len(),
                self.rows
            ));
        }
        let checksum = stable_hash(&rows);
        if checksum != self.checksum {
            return Err(format!(
                "checksum mismatch: {checksum:#018x}, frame says {:#018x}",
                self.checksum
            ));
        }
        Ok(())
    }
}

/// Install (once per process) a chained panic hook that swallows panics
/// whose payload starts with [`INJECTED_PANIC_MARKER`], delegating every
/// other panic to the previously installed hook. Injected panics are
/// *expected* — they are caught and retried — so printing a message and
/// backtrace for each would bury real diagnostics in noise.
pub fn install_quiet_injected_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(INJECTED_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Value;

    #[test]
    fn clean_plan_never_faults() {
        let plan = ChaosPlan::none();
        assert!(plan.is_clean());
        for phase in [TaskPhase::Map, TaskPhase::Shuffle, TaskPhase::Reduce] {
            for task in 0..16 {
                for attempt in 0..4 {
                    assert_eq!(plan.fault_for("s", phase, task, attempt), None);
                }
            }
        }
    }

    #[test]
    fn fault_decisions_are_pure_functions_of_coordinates() {
        let plan = ChaosPlan::seeded(42)
            .with_panics(0.2)
            .with_transients(0.2)
            .with_corruption(0.2)
            .with_delays(0.1, Duration::from_millis(1));
        for phase in [TaskPhase::Map, TaskPhase::Shuffle, TaskPhase::Reduce] {
            for task in 0..32 {
                for attempt in 0..3 {
                    let a = plan.fault_for("stage", phase, task, attempt);
                    let b = plan.fault_for("stage", phase, task, attempt);
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn seed_and_coordinates_change_the_schedule() {
        let plan = |seed| ChaosPlan::seeded(seed).with_panics(0.5);
        let schedule = |seed| -> Vec<Option<FaultKind>> {
            (0..64)
                .map(|t| plan(seed).fault_for("s", TaskPhase::Map, t, 0))
                .collect()
        };
        assert_ne!(schedule(1), schedule(2), "different seeds should differ");
        let faults = schedule(1).iter().filter(|f| f.is_some()).count();
        assert!(
            (16..=48).contains(&faults),
            "p=0.5 over 64 draws should land near half, got {faults}"
        );
    }

    #[test]
    fn explicit_kills_hit_any_phase_on_first_attempt_only() {
        let plan = ChaosPlan::none()
            .kill("s", TaskPhase::Map, 3)
            .kill("s", TaskPhase::Shuffle, 1);
        assert_eq!(
            plan.fault_for("s", TaskPhase::Map, 3, 0),
            Some(FaultKind::Transient)
        );
        assert_eq!(plan.fault_for("s", TaskPhase::Map, 3, 1), None);
        assert_eq!(
            plan.fault_for("s", TaskPhase::Shuffle, 1, 0),
            Some(FaultKind::Transient)
        );
        assert_eq!(plan.fault_for("s", TaskPhase::Reduce, 1, 0), None);
        assert_eq!(plan.fault_for("other", TaskPhase::Map, 3, 0), None);
    }

    #[test]
    fn explicit_corruption_downgrades_to_transient_in_reduce() {
        let plan = ChaosPlan::none()
            .corrupt("s", TaskPhase::Shuffle, 0)
            .corrupt("s", TaskPhase::Reduce, 1);
        assert_eq!(
            plan.fault_for("s", TaskPhase::Shuffle, 0, 0),
            Some(FaultKind::Corrupt)
        );
        assert_eq!(
            plan.fault_for("s", TaskPhase::Reduce, 1, 0),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn fault_cap_silences_seeded_faults_but_not_kills() {
        let plan = ChaosPlan::seeded(7)
            .with_transients(1.0)
            .with_fault_cap(2)
            .kill("s", TaskPhase::Reduce, 0);
        assert!(plan.fault_for("s", TaskPhase::Map, 0, 0).is_some());
        assert!(plan.fault_for("s", TaskPhase::Map, 0, 1).is_some());
        assert_eq!(plan.fault_for("s", TaskPhase::Map, 0, 2), None);
        assert_eq!(plan.fault_for("s", TaskPhase::Map, 0, 3), None);
        assert_eq!(
            plan.fault_for("s", TaskPhase::Reduce, 0, 0),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn process_kills_hit_first_attempt_and_any_phase() {
        let plan = ChaosPlan::none().kill_process("s", TaskPhase::Map, 2);
        assert!(!plan.is_clean());
        assert_eq!(
            plan.fault_for("s", TaskPhase::Map, 2, 0),
            Some(FaultKind::KillProcess)
        );
        assert_eq!(plan.fault_for("s", TaskPhase::Map, 2, 1), None);
        assert_eq!(plan.fault_for("s", TaskPhase::Reduce, 2, 0), None);
    }

    #[test]
    fn wire_and_straggler_knobs_target_primary_first_attempts() {
        let d = Duration::from_millis(5);
        let plan = ChaosPlan::none()
            .corrupt_wire("s", TaskPhase::Reduce, 1)
            .delay_wire("s", TaskPhase::Map, 0, d)
            .straggle("s", TaskPhase::Reduce, 3, d);
        assert!(!plan.is_clean());
        assert!(plan.wire_corrupt_for("s", TaskPhase::Reduce, 1, 0));
        assert!(!plan.wire_corrupt_for("s", TaskPhase::Reduce, 1, 1));
        assert!(!plan.wire_corrupt_for("s", TaskPhase::Map, 1, 0));
        assert_eq!(plan.wire_delay_for("s", TaskPhase::Map, 0, 0), Some(d));
        assert_eq!(plan.wire_delay_for("s", TaskPhase::Map, 0, 1), None);
        assert_eq!(
            plan.straggle_for("s", TaskPhase::Reduce, 3, 0, false),
            Some(d)
        );
        assert_eq!(plan.straggle_for("s", TaskPhase::Reduce, 3, 0, true), None);
        assert_eq!(plan.straggle_for("s", TaskPhase::Reduce, 3, 1, false), None);
        // The wire/straggler knobs stay out of the fault cascade — they
        // shape the transport, not the task outcome.
        assert_eq!(plan.fault_for("s", TaskPhase::Reduce, 1, 0), None);
    }

    #[test]
    fn attempt_timeout_rides_along_on_retry_policy() {
        let policy = RetryPolicy::no_backoff(3).with_attempt_timeout(Duration::from_millis(40));
        assert_eq!(policy.attempt_timeout, Some(Duration::from_millis(40)));
        assert_eq!(RetryPolicy::default().attempt_timeout, None);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(55),
            attempt_timeout: None,
        };
        assert_eq!(policy.backoff_after(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_after(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_after(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_after(3), Duration::from_millis(55));
        assert_eq!(policy.backoff_after(60), Duration::from_millis(55));
        assert_eq!(RetryPolicy::no_backoff(3).backoff_after(0), Duration::ZERO);
    }

    fn row(k: i32) -> Row {
        Row::new(vec![Value::Int(k), Value::Str(format!("v{k}").into())])
    }

    #[test]
    fn frame_verifies_clean_rows_and_rejects_any_damage() {
        let rows: Vec<Row> = (0..10).map(row).collect();
        let frame = ExtentFrame::compute(&rows);
        assert!(frame.verify(&rows).is_ok());

        let mut truncated = rows.clone();
        truncated.pop();
        let err = frame.verify(&truncated).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");

        let mut flipped = rows.clone();
        flipped[4] = row(999);
        let err = frame.verify(&flipped).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        let mut swapped = rows.clone();
        swapped.swap(0, 9);
        assert!(frame.verify(&swapped).is_err(), "order is part of the data");
    }

    #[test]
    fn empty_extent_frames_work() {
        let frame = ExtentFrame::compute(&[]);
        assert!(frame.verify(&[]).is_ok());
        assert!(frame.verify(&[row(1)]).is_err());
    }
}
