//! Figs 22–23: CTR lift vs coverage for the movies and dieting ad
//! classes, comparing KE-z (three thresholds), F-Ex, and KE-pop.
//!
//! For each scheme: reduce the training examples, fit per-ad logistic
//! regression, rank test examples by prediction, and report CTR lift at
//! each coverage level. The paper's shape: KE-z dominates F-Ex and KE-pop
//! at low coverage (several times the lift), and lift decays to zero at
//! full coverage by construction.

use super::Ctx;
use crate::table::{f3, Table};
use bt::eval::{by_ad, lift_coverage, scores_from_examples, train_models, Scheme};
use bt::lr::LrConfig;

const COVERAGES: [f64; 7] = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Run the experiment (also used to drive Fig 23 — the second ad class).
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let (train, test) = ctx.split();
    let scores = scores_from_examples(&train, params.min_support, params.min_example_support);
    let train_by_ad = by_ad(&train);
    let test_by_ad = by_ad(&test);

    let schemes = [
        Scheme::KeZ { threshold: 1.28 },
        Scheme::KeZ { threshold: 1.96 },
        Scheme::KeZ { threshold: 2.56 },
        Scheme::FEx,
        Scheme::KePop { n: 50 },
        Scheme::All,
    ];

    let mut out = String::new();
    for (fig, ad) in [("Fig 22", "movies"), ("Fig 23", "dieting")] {
        let (Some(train_examples), Some(test_examples)) = (train_by_ad.get(ad), test_by_ad.get(ad))
        else {
            out.push_str(&format!("{fig} — {ad}: insufficient examples\n"));
            continue;
        };
        let overall = bt::example::ctr(test_examples);

        let mut header: Vec<String> = vec!["Scheme".into()];
        header.extend(COVERAGES.iter().map(|c| format!("lift@{c}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);

        for scheme in &schemes {
            let single: std::collections::BTreeMap<String, Vec<bt::Example>> =
                [(ad.to_string(), train_examples.clone())]
                    .into_iter()
                    .collect();
            let models = train_models(&single, scheme, &scores, &LrConfig::default());
            let curve = lift_coverage(ad, &models[ad], test_examples, scheme, &scores, &COVERAGES);
            let mut cells = vec![scheme.to_string()];
            cells.extend(curve.iter().map(|p| f3(p.lift)));
            table.row(cells);
        }
        out.push_str(&format!(
            "{fig} — {ad} ad class: CTR lift (absolute, over test CTR {overall:.4}) vs coverage:\n{}\n",
            table.render()
        ));
    }
    out
}
