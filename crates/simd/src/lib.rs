//! Dependency-free portable-SIMD shim: fixed-width 8-lane vectors over
//! plain arrays, stable Rust only.
//!
//! The lane types ([`F64x8`], [`I64x8`]) and the lane mask ([`M8`]) are
//! thin wrappers around `[T; 8]` whose operations are straight-line
//! per-lane loops. LLVM auto-vectorizes these into real SIMD on every
//! target that has it and falls back to scalar code everywhere else — no
//! nightly features, no intrinsics, no `cfg` forest. Callers process
//! slices with `chunks_exact(LANES)` plus a scalar tail.
//!
//! Two semantic details matter for byte-identical query results:
//!
//! * **Total order.** Ordering comparisons go through [`total_key`], the
//!   monotone bits-mapping `b ^ (((b >> 63) >> 1))` that `f64::total_cmp`
//!   is specified by: comparing keys as `i64` is exactly IEEE 754
//!   `totalOrder`, including `-0.0 < +0.0` and NaN placement.
//! * **Division never traps.** There is no lane divide for `i64` (callers
//!   guard zero divisors before dividing) and the `f64` divide is IEEE
//!   (zero divisors give ±inf/NaN); callers mask zero divisors out when
//!   the scalar semantics demand null instead.

/// Number of lanes in every vector type.
pub const LANES: usize = 8;

/// Monotone `i64` key for IEEE 754 `totalOrder`: comparing keys with
/// integer `<` is exactly `f64::total_cmp`.
#[inline(always)]
pub fn total_key(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Eight `f64` lanes.
#[derive(Clone, Copy, Debug)]
pub struct F64x8(pub [f64; LANES]);

/// Eight `i64` lanes.
#[derive(Clone, Copy, Debug)]
pub struct I64x8(pub [i64; LANES]);

/// Eight boolean lanes (comparison results, selection masks).
#[derive(Clone, Copy, Debug)]
pub struct M8(pub [bool; LANES]);

macro_rules! lanewise {
    ($a:expr, $b:expr, $f:expr) => {{
        let (a, b) = ($a, $b);
        let mut out = [Default::default(); LANES];
        let mut i = 0;
        while i < LANES {
            out[i] = $f(a[i], b[i]);
            i += 1;
        }
        out
    }};
}

impl F64x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> F64x8 {
        F64x8([v; LANES])
    }

    /// Load the first eight elements of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[f64]) -> F64x8 {
        F64x8(s[..LANES].try_into().unwrap())
    }

    /// Widen the first eight `i64`s of `s` (`as f64` per lane).
    #[inline(always)]
    pub fn load_i64(s: &[i64]) -> F64x8 {
        let mut out = [0.0; LANES];
        for (o, v) in out.iter_mut().zip(s) {
            *o = *v as f64;
        }
        F64x8(out)
    }

    /// Widen the first eight `i32`s of `s` (`as f64` per lane).
    #[inline(always)]
    pub fn load_i32(s: &[i32]) -> F64x8 {
        let mut out = [0.0; LANES];
        for (o, v) in out.iter_mut().zip(s) {
            *o = *v as f64;
        }
        F64x8(out)
    }

    /// Store into the first eight elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [f64]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Lanewise IEEE `==` (NaN lanes false, `-0.0 == 0.0` true).
    #[inline(always)]
    pub fn eq(self, o: F64x8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: f64, b: f64| a == b))
    }

    /// Lanewise [`total_key`]: feed the result to [`I64x8`] compares for
    /// `total_cmp`-exact ordering.
    #[inline(always)]
    pub fn total_keys(self) -> I64x8 {
        let mut out = [0i64; LANES];
        for (o, v) in out.iter_mut().zip(&self.0) {
            *o = total_key(*v);
        }
        I64x8(out)
    }
}

/// Lanewise `+`.
impl std::ops::Add for F64x8 {
    type Output = F64x8;
    #[inline(always)]
    fn add(self, o: F64x8) -> F64x8 {
        F64x8(lanewise!(self.0, o.0, |a: f64, b: f64| a + b))
    }
}

/// Lanewise `-`.
impl std::ops::Sub for F64x8 {
    type Output = F64x8;
    #[inline(always)]
    fn sub(self, o: F64x8) -> F64x8 {
        F64x8(lanewise!(self.0, o.0, |a: f64, b: f64| a - b))
    }
}

/// Lanewise `*`.
impl std::ops::Mul for F64x8 {
    type Output = F64x8;
    #[inline(always)]
    fn mul(self, o: F64x8) -> F64x8 {
        F64x8(lanewise!(self.0, o.0, |a: f64, b: f64| a * b))
    }
}

/// Lanewise IEEE `/` (never traps; zero divisors give ±inf/NaN).
impl std::ops::Div for F64x8 {
    type Output = F64x8;
    #[inline(always)]
    fn div(self, o: F64x8) -> F64x8 {
        F64x8(lanewise!(self.0, o.0, |a: f64, b: f64| a / b))
    }
}

impl I64x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i64) -> I64x8 {
        I64x8([v; LANES])
    }

    /// Load the first eight elements of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[i64]) -> I64x8 {
        I64x8(s[..LANES].try_into().unwrap())
    }

    /// Widen the first eight `i32`s of `s`.
    #[inline(always)]
    pub fn load_i32(s: &[i32]) -> I64x8 {
        let mut out = [0i64; LANES];
        for (o, v) in out.iter_mut().zip(s) {
            *o = *v as i64;
        }
        I64x8(out)
    }

    /// Store into the first eight elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [i64]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Lanewise wrapping `+`.
    #[inline(always)]
    pub fn wrapping_add(self, o: I64x8) -> I64x8 {
        I64x8(lanewise!(self.0, o.0, |a: i64, b: i64| a.wrapping_add(b)))
    }

    /// Lanewise wrapping `-`.
    #[inline(always)]
    pub fn wrapping_sub(self, o: I64x8) -> I64x8 {
        I64x8(lanewise!(self.0, o.0, |a: i64, b: i64| a.wrapping_sub(b)))
    }

    /// Lanewise wrapping `*`.
    #[inline(always)]
    pub fn wrapping_mul(self, o: I64x8) -> I64x8 {
        I64x8(lanewise!(self.0, o.0, |a: i64, b: i64| a.wrapping_mul(b)))
    }

    /// Lanewise `==`.
    #[inline(always)]
    pub fn eq(self, o: I64x8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: i64, b: i64| a == b))
    }

    /// Lanewise `<`.
    #[inline(always)]
    pub fn lt(self, o: I64x8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: i64, b: i64| a < b))
    }

    /// Lanewise `<=`.
    #[inline(always)]
    pub fn le(self, o: I64x8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: i64, b: i64| a <= b))
    }

    /// Lanewise `as f64` widening.
    #[inline(always)]
    pub fn to_f64(self) -> F64x8 {
        let mut out = [0.0; LANES];
        for (o, v) in out.iter_mut().zip(&self.0) {
            *o = *v as f64;
        }
        F64x8(out)
    }
}

impl M8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: bool) -> M8 {
        M8([v; LANES])
    }

    /// Load the first eight elements of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[bool]) -> M8 {
        M8(s[..LANES].try_into().unwrap())
    }

    /// Store into the first eight elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [bool]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Lanewise `&`.
    #[inline(always)]
    pub fn and(self, o: M8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: bool, b: bool| a & b))
    }

    /// Lanewise `|`.
    #[inline(always)]
    pub fn or(self, o: M8) -> M8 {
        M8(lanewise!(self.0, o.0, |a: bool, b: bool| a | b))
    }

    /// True when any lane is set.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&v| v)
    }

    /// True when every lane is set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&v| v)
    }

    /// Lanewise `if mask { a } else { b }` over `f64` lanes.
    #[inline(always)]
    pub fn select_f64(self, a: F64x8, b: F64x8) -> F64x8 {
        let mut out = a.0;
        for (o, (&m, &bv)) in out.iter_mut().zip(self.0.iter().zip(&b.0)) {
            if !m {
                *o = bv;
            }
        }
        F64x8(out)
    }

    /// Lanewise `if mask { a } else { b }` over `i64` lanes.
    #[inline(always)]
    pub fn select_i64(self, a: I64x8, b: I64x8) -> I64x8 {
        let mut out = a.0;
        for (o, (&m, &bv)) in out.iter_mut().zip(self.0.iter().zip(&b.0)) {
            if !m {
                *o = bv;
            }
        }
        I64x8(out)
    }
}

/// Lanewise `!`.
impl std::ops::Not for M8 {
    type Output = M8;
    #[inline(always)]
    fn not(self) -> M8 {
        let mut out = self.0;
        for v in &mut out {
            *v = !*v;
        }
        M8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    const F64_EDGES: [f64; 12] = [
        f64::NAN,
        -f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        0.0,
        -0.0,
        1.5,
        -1.5,
        9_007_199_254_740_993.0, // 2^53 + 1 territory
    ];

    const I64_EDGES: [i64; 8] = [
        i64::MIN,
        i64::MIN + 1,
        -1,
        0,
        1,
        i64::MAX - 1,
        i64::MAX,
        1 << 53,
    ];

    #[test]
    fn total_key_orders_exactly_like_total_cmp() {
        for &a in &F64_EDGES {
            for &b in &F64_EDGES {
                let by_key = total_key(a).cmp(&total_key(b));
                assert_eq!(by_key, a.total_cmp(&b), "total order of {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn f64_lane_arith_matches_scalar_on_edge_values() {
        for &a in &F64_EDGES {
            for &b in &F64_EDGES {
                let va = F64x8::splat(a);
                let vb = F64x8::splat(b);
                // Compare by bits so NaN payloads count too.
                assert_eq!((va + vb).0[3].to_bits(), (a + b).to_bits());
                assert_eq!((va - vb).0[3].to_bits(), (a - b).to_bits());
                assert_eq!((va * vb).0[3].to_bits(), (a * b).to_bits());
                assert_eq!((va / vb).0[3].to_bits(), (a / b).to_bits());
                assert_eq!(va.eq(vb).0[3], a == b, "IEEE == of {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn nan_and_signed_zero_equality_semantics() {
        let nan = F64x8::splat(f64::NAN);
        assert!(!nan.eq(nan).any(), "NaN != NaN lanewise");
        let pz = F64x8::splat(0.0);
        let nz = F64x8::splat(-0.0);
        assert!(pz.eq(nz).all(), "-0.0 == +0.0 lanewise");
        // ... but total order separates the zeros and places NaN at the ends.
        assert_eq!(
            total_key(-0.0).cmp(&total_key(0.0)),
            Ordering::Less,
            "-0.0 sorts before +0.0 in total order"
        );
    }

    #[test]
    fn i64_lane_arith_wraps_like_scalar() {
        for &a in &I64_EDGES {
            for &b in &I64_EDGES {
                let va = I64x8::splat(a);
                let vb = I64x8::splat(b);
                assert_eq!(va.wrapping_add(vb).0[0], a.wrapping_add(b));
                assert_eq!(va.wrapping_sub(vb).0[0], a.wrapping_sub(b));
                assert_eq!(va.wrapping_mul(vb).0[0], a.wrapping_mul(b));
                assert_eq!(va.eq(vb).0[0], a == b);
                assert_eq!(va.lt(vb).0[0], a < b);
                assert_eq!(va.le(vb).0[0], a <= b);
            }
        }
    }

    #[test]
    fn loads_widen_and_masks_select() {
        let ints: Vec<i64> = (0..8).map(|i| i - 4).collect();
        let widened = F64x8::load_i64(&ints);
        for i in 0..LANES {
            assert_eq!(widened.0[i], (i as i64 - 4) as f64);
        }
        let narrow: Vec<i32> = vec![i32::MIN, -1, 0, 1, i32::MAX, 5, 6, 7];
        assert_eq!(I64x8::load_i32(&narrow).0[0], i32::MIN as i64);
        assert_eq!(F64x8::load_i32(&narrow).0[4], i32::MAX as f64);

        let m = M8([true, false, true, false, true, false, true, false]);
        let sel = m.select_i64(I64x8::splat(1), I64x8::splat(2));
        assert_eq!(sel.0, [1, 2, 1, 2, 1, 2, 1, 2]);
        assert!(!(!m).0[0]);
        assert!(m.or(!m).all());
        assert!(!m.and(!m).any());
    }
}
