//! PR 9 acceptance benchmark: map-side plan push-down — fused mapper
//! fragments plus combiner-style partial aggregation before the shuffle.
//!
//! The workload is the behavioural-targeting log. Bot elimination runs
//! once ([`bt::queries::bot_elim`]) to produce the cleaned log, exactly as
//! the deployed pipeline does; then two consumers are measured with
//! push-down on vs off (the reduce-only baseline):
//!
//! 1. **dashboards** — the shared 16-query advertiser set over the
//!    cleaned log ([`bt::queries::advertisers::dashboard_job`]). The
//!    click filter and the factor-window partial aggregation move
//!    map-side, so the shuffle carries pre-aggregated GCD-cell partials
//!    instead of raw click rows.
//! 2. **clickscore** — the single-query click-score job
//!    ([`bt::queries::advertisers::click_score_job`]): filter →
//!    narrowing projection → partial aggregation all push.
//!
//! For each job the experiment records shuffle bytes, bytes saved, mapper
//! row counts, map/stage wall time — and asserts the outputs are
//! **byte-identical** with push-down on and off, in all four DSMS
//! execution modes, and under seeded chaos with a tight shuffle memory
//! budget. The raw-log advertiser set ([`shared_job`]) is the negative
//! control: its bot-elimination fan-out blocks the split, so it must
//! report zero pushed operators and zero bytes saved. Acceptance: ≥2x
//! shuffle-byte cut on both measured jobs. Results go to `BENCH_PR9.json`.
//!
//! `TIMR_PR9_SCALE=4` replicates the log that many times for a heavier
//! shuffle.

use crate::table::Table;
use bt::queries::advertisers::{click_score_job, dashboard_job, shared_job, CLEAN_LOG_DATASET};
use bt::queries::bot_elim;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, JobStats, RetryPolicy};
use relation::Row;
use std::time::Duration;
use temporal::exec::ExecMode;

const DASHBOARDS: usize = 16;

/// Log replication factor (`TIMR_PR9_SCALE` overrides, default 1).
fn scale() -> usize {
    std::env::var("TIMR_PR9_SCALE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn job_wall(stats: &JobStats) -> Duration {
    stats.stages.iter().map(|s| s.wall_time).sum()
}

type Bytes = Vec<Vec<Vec<Row>>>;

fn collect_bytes(dfs: &Dfs, datasets: &[String]) -> Bytes {
    datasets
        .iter()
        .map(|d| dfs.get(d).unwrap().partitions.as_ref().clone())
        .collect()
}

/// One measured side of a job (push-down on or off).
struct Side {
    stats: JobStats,
    bytes: Bytes,
    pushed_ops: usize,
    pushed_partials: usize,
}

impl Side {
    fn wall(&self) -> Duration {
        job_wall(&self.stats)
    }
}

/// Run the dashboard set or the click-score job once.
fn run_job(
    params: &bt::BtParams,
    dfs: &Dfs,
    cluster: &Cluster,
    job: &str,
    push: bool,
    mode: ExecMode,
) -> Side {
    match job {
        "dashboards" => {
            let out = dashboard_job(params, DASHBOARDS)
                .with_push_down(push)
                .with_exec_mode(mode)
                .run(dfs, cluster)
                .expect("dashboard job runs");
            Side {
                bytes: collect_bytes(dfs, &out.datasets),
                pushed_ops: out.pushed_ops,
                pushed_partials: out.pushed_partials,
                stats: out.stats,
            }
        }
        "clickscore" => {
            let compiled = click_score_job(params)
                .with_push_down(push)
                .compile()
                .expect("click-score job compiles");
            let out = click_score_job(params)
                .with_push_down(push)
                .with_exec_mode(mode)
                .run(dfs, cluster)
                .expect("click-score job runs");
            Side {
                bytes: collect_bytes(dfs, std::slice::from_ref(&out.dataset)),
                pushed_ops: compiled.pushed_ops,
                pushed_partials: compiled.pushed_partials,
                stats: out.stats,
            }
        }
        other => panic!("unknown pr9 job `{other}`"),
    }
}

/// Interleaved best-of-3: run on/off alternately, keep each side's
/// fastest run so transient noise lands on both sides evenly.
fn measure(params: &bt::BtParams, dfs: &Dfs, cluster: &Cluster, job: &str) -> (Side, Side) {
    let mut best_on: Option<Side> = None;
    let mut best_off: Option<Side> = None;
    for _ in 0..3 {
        let on = run_job(params, dfs, cluster, job, true, ExecMode::Compiled);
        best_on = Some(match best_on {
            Some(prev) if prev.wall() <= on.wall() => prev,
            _ => on,
        });
        let off = run_job(params, dfs, cluster, job, false, ExecMode::Compiled);
        best_off = Some(match best_off {
            Some(prev) if prev.wall() <= off.wall() => prev,
            _ => off,
        });
    }
    (best_on.expect("reps > 0"), best_off.expect("reps > 0"))
}

/// Run the experiment.
pub fn run(ctx: &mut super::Ctx) -> String {
    let params = ctx.workload.bt_params();
    let cluster = &ctx.workload.cluster;
    let scale = scale();

    // A dedicated DFS so the replicated log and the cleaned-log alias
    // never leak into other experiments' workloads.
    let base = ctx.workload.dfs.get("logs").expect("workload log");
    let dfs = Dfs::new();
    let mut parts: Vec<Vec<Row>> = Vec::new();
    for _ in 0..scale {
        parts.extend(base.partitions.iter().cloned());
    }
    let log_rows: usize = parts.iter().map(Vec::len).sum();
    dfs.put("logs", Dataset::partitioned(base.schema.clone(), parts))
        .unwrap();

    // Bot elimination runs ONCE, as in the deployed pipeline; every
    // dashboard consumes its output.
    let bot = bot_elim::query(&params);
    let clean = timr::TimrJob::new("pr9_botelim", bot.plan.clone())
        .with_annotation(bot.annotation.clone())
        .with_machines(params.machines)
        .run(&dfs, cluster)
        .expect("bot elimination runs");
    dfs.put_overwrite(CLEAN_LOG_DATASET, dfs.get(&clean.dataset).unwrap());

    let mut table = Table::new(&[
        "Job",
        "Shuffle off B",
        "Shuffle on B",
        "Cut",
        "Saved B",
        "Map rows in→out",
        "Map ms",
        "Wall off ms",
        "Wall on ms",
    ]);
    let mut json_jobs = Vec::new();
    let mut cuts = Vec::new();

    for job in ["dashboards", "clickscore"] {
        let (on, off) = measure(&params, &dfs, cluster, job);
        assert_eq!(
            on.bytes, off.bytes,
            "{job}: push-down must be byte-identical to the reduce-only plan"
        );
        assert!(on.pushed_ops > 0, "{job}: expected pushed operators");
        assert_eq!(on.pushed_partials, 1, "{job}: expected one pushed partial");
        assert_eq!(off.pushed_ops, 0, "{job}: baseline must not push");

        let on_shuffle = on.stats.total_shuffle_bytes();
        let off_shuffle = off.stats.total_shuffle_bytes();
        let saved = on.stats.total_shuffle_bytes_saved();
        let cut = off_shuffle as f64 / on_shuffle.max(1) as f64;
        cuts.push((job, cut));
        let mt = on.stats.map_totals();
        assert!(saved > 0, "{job}: push-down saved no shuffle bytes");
        assert!(
            mt.rows_out < mt.rows_in,
            "{job}: mapper fragments must shrink the shuffled row count"
        );
        assert_eq!(off.stats.total_shuffle_bytes_saved(), 0);

        table.row(vec![
            job.to_string(),
            off_shuffle.to_string(),
            on_shuffle.to_string(),
            format!("{cut:.2}x"),
            saved.to_string(),
            format!("{} → {}", mt.rows_in, mt.rows_out),
            format!("{:.1}", ms(mt.map_time)),
            format!("{:.1}", ms(off.wall())),
            format!("{:.1}", ms(on.wall())),
        ]);
        json_jobs.push(serde_json::Value::Object(vec![
            ("job".into(), serde_json::Value::Str(job.into())),
            (
                "shuffle_bytes_off".into(),
                serde_json::Value::UInt(off_shuffle),
            ),
            (
                "shuffle_bytes_on".into(),
                serde_json::Value::UInt(on_shuffle),
            ),
            ("shuffle_cut".into(), serde_json::Value::Float(cut)),
            ("shuffle_bytes_saved".into(), serde_json::Value::UInt(saved)),
            ("map_rows_in".into(), serde_json::Value::UInt(mt.rows_in)),
            ("map_rows_out".into(), serde_json::Value::UInt(mt.rows_out)),
            ("map_ms".into(), serde_json::Value::Float(ms(mt.map_time))),
            (
                "pushed_ops".into(),
                serde_json::Value::UInt(on.pushed_ops as u64),
            ),
            (
                "pushed_partials".into(),
                serde_json::Value::UInt(on.pushed_partials as u64),
            ),
            (
                "wall_off_ms".into(),
                serde_json::Value::Float(ms(off.wall())),
            ),
            ("wall_on_ms".into(), serde_json::Value::Float(ms(on.wall()))),
            (
                "speedup".into(),
                serde_json::Value::Float(
                    off.wall().as_secs_f64() / on.wall().as_secs_f64().max(1e-9),
                ),
            ),
            ("byte_identical".into(), serde_json::Value::Bool(true)),
        ]));
    }

    // Four-mode identity anchor: every DSMS execution mode must write the
    // same dashboard bytes with push-down on as Compiled writes with it
    // off.
    let reference = run_job(
        &params,
        &dfs,
        cluster,
        "dashboards",
        false,
        ExecMode::Compiled,
    );
    for mode in [
        ExecMode::Interpreted,
        ExecMode::Compiled,
        ExecMode::Columnar,
        ExecMode::Fused,
    ] {
        let pushed = run_job(&params, &dfs, cluster, "dashboards", true, mode);
        assert_eq!(
            reference.bytes, pushed.bytes,
            "{mode:?} pushed run must write the reduce-only bytes"
        );
    }

    // Chaos + spill smoke: seeded faults below the retry budget and a
    // shuffle memory budget far below the shuffle volume must not change
    // a single byte of the pushed plan's output.
    let hostile = Cluster::with_config(ClusterConfig {
        threads: 4,
        chaos: ChaosPlan::seeded(7)
            .with_panics(0.1)
            .with_transients(0.1)
            .with_corruption(0.1)
            .with_fault_cap(2),
        retry: RetryPolicy::no_backoff(4),
        memory_budget_bytes: Some(4096),
        ..ClusterConfig::default()
    });
    let chaotic = run_job(
        &params,
        &dfs,
        &hostile,
        "dashboards",
        true,
        ExecMode::Compiled,
    );
    assert_eq!(
        reference.bytes, chaotic.bytes,
        "chaos + spill changed pushed-plan bytes"
    );

    // Negative control: the raw-log advertiser set fans its source into
    // the bot-elimination subgraph, so nothing may push.
    let control = shared_job(&params, 8)
        .run(&dfs, cluster)
        .expect("raw advertiser job runs");
    assert_eq!(
        control.pushed_ops, 0,
        "bot-elim fan-out must block push-down"
    );
    assert_eq!(control.stats.total_shuffle_bytes_saved(), 0);

    let min_cut = cuts.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr9".into())),
        ("scale".into(), serde_json::Value::UInt(scale as u64)),
        ("log_rows".into(), serde_json::Value::UInt(log_rows as u64)),
        (
            "dashboards".into(),
            serde_json::Value::UInt(DASHBOARDS as u64),
        ),
        ("jobs".into(), serde_json::Value::Array(json_jobs)),
        ("min_shuffle_cut".into(), serde_json::Value::Float(min_cut)),
        (
            "shuffle_cut_ge_2x".into(),
            serde_json::Value::Bool(min_cut >= 2.0),
        ),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        (
            "control_pushed_ops".into(),
            serde_json::Value::UInt(control.pushed_ops as u64),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR9.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR9.json: {e}");
    }

    assert!(
        min_cut >= 2.0,
        "acceptance: shuffle-byte cut must be ≥2x on every measured job (got {min_cut:.2}x)"
    );

    format!(
        "PR 9 — map-side push-down vs reduce-only plans over {log_rows} log rows, scale {scale} \
         (written to BENCH_PR9.json):\n{}\
         outputs byte-identical on/off (all four exec modes, chaos + 4 KiB spill budget); \
         raw advertiser control pushes 0 ops; min shuffle cut {min_cut:.2}x (target ≥2x)\n",
        table.render(),
    )
}
