//! Filter (Select): keep events whose payload satisfies a predicate
//! (paper §II-A.2, Fig 2). Stateless; lifetimes pass through unchanged.

use crate::batch::EventBatch;
use crate::compiled::CompiledExpr;
use crate::error::Result;
use crate::expr::Expr;
use crate::stream::EventStream;

/// Apply `predicate` to each event's payload, keeping matches. The
/// predicate is compiled once (indices resolved, no per-row name lookup).
/// A uniquely-owned input is retained in place — no clone of survivors;
/// shared storage is rebuilt by cloning only the survivors.
pub fn filter(mut input: EventStream, predicate: &Expr) -> Result<EventStream> {
    let compiled = CompiledExpr::compile(predicate, input.schema());
    if !input.is_unique() {
        let schema = input.schema().clone();
        let mut events = Vec::with_capacity(input.len());
        for e in input.events() {
            if compiled.eval_predicate(&e.payload)? {
                events.push(e.clone());
            }
        }
        return Ok(EventStream::new(schema, events));
    }
    // `retain` cannot early-return, so capture the first evaluation error
    // and surface it afterwards; the kept-set before the error matches the
    // interpreted operator (which stops at the same row) because the whole
    // stream is discarded on error anyway.
    let mut first_err = None;
    input.events_mut().retain(|e| {
        if first_err.is_some() {
            return false;
        }
        match compiled.eval_predicate(&e.payload) {
            Ok(keep) => keep,
            Err(err) => {
                first_err = Some(err);
                false
            }
        }
    });
    match first_err {
        Some(err) => Err(err),
        None => Ok(input),
    }
}

/// Columnar filter: the predicate is evaluated over the whole batch at
/// once and survivors are compacted in place. Output events (and any
/// error) are byte-identical to [`filter`] on the equivalent row stream.
pub fn filter_batch(mut input: EventBatch, predicate: &Expr) -> Result<EventBatch> {
    let compiled = CompiledExpr::compile(predicate, input.schema());
    let keep = compiled.eval_predicate_batch(input.payload())?;
    if keep.contains(&false) {
        input.retain(&keep);
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::expr::{col, lit};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn power_stream() -> EventStream {
        // The power-meter example of paper Fig 2.
        let schema = Schema::new(vec![Field::new("Power", ColumnType::Long)]);
        EventStream::new(
            schema,
            vec![
                Event::point(1, row![0i64]),
                Event::point(2, row![120i64]),
                Event::point(3, row![0i64]),
                Event::point(4, row![370i64]),
            ],
        )
    }

    #[test]
    fn keeps_matching_events_only() {
        let out = filter(power_stream(), &col("Power").gt(lit(0i64))).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out
            .events()
            .iter()
            .all(|e| e.payload.get(0).as_long().unwrap() > 0));
    }

    #[test]
    fn lifetimes_unchanged() {
        let out = filter(power_stream(), &col("Power").gt(lit(0i64))).unwrap();
        assert_eq!(out.events()[0].start(), 2);
        assert_eq!(out.events()[1].start(), 4);
        assert!(out.events().iter().all(|e| e.lifetime.is_point()));
    }

    #[test]
    fn empty_result_keeps_schema() {
        let out = filter(power_stream(), &col("Power").gt(lit(1_000i64))).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema(), power_stream().schema());
    }

    #[test]
    fn eval_errors_surface() {
        assert!(filter(power_stream(), &col("Nope").gt(lit(0i64))).is_err());
    }

    #[test]
    fn shared_input_is_left_untouched() {
        let original = power_stream();
        let out = filter(original.clone(), &col("Power").gt(lit(0i64))).unwrap();
        assert_eq!(original.len(), 4);
        assert_eq!(out.len(), 2);
    }
}
